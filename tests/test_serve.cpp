// Tests for the live telemetry service: the streaming aggregator's
// backpressure contract (bounded drop-oldest queues that never block the
// publisher) and the HTTP/SSE server end to end over real sockets —
// /healthz, /metrics.json, /events, the embedded dashboard, concurrent
// clients, and graceful shutdown.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/stream.hpp"
#include "serve/http.hpp"
#include "serve/telemetry_service.hpp"

namespace rfid {
namespace {

using obs::StreamingAggregator;
using obs::StreamSubscription;

obs::Metrics metrics_with_rounds(std::uint64_t rounds) {
  obs::Metrics metrics;
  metrics.rounds = rounds;
  metrics.polls = rounds * 3;
  metrics.time_us = static_cast<double>(rounds) * 10.0;
  return metrics;
}

// --- StreamSubscription: the bounded drop-oldest contract -------------------

TEST(Stream, SubscriptionDropsOldestAndCountsIt) {
  StreamingAggregator aggregator(1);
  const auto subscription = aggregator.subscribe(3);
  for (std::uint64_t i = 1; i <= 8; ++i) {
    aggregator.update_reader(0, metrics_with_rounds(i), 0.0);
    (void)aggregator.publish(0.1);
  }
  // Capacity 3: the 5 oldest snapshots were dropped, newest 3 retained.
  EXPECT_EQ(subscription->dropped(), 5u);
  std::vector<std::uint64_t> sequences;
  while (auto item = subscription->poll()) {
    ASSERT_EQ(item->type, StreamSubscription::Item::Type::kSnapshot);
    sequences.push_back(item->snapshot->sequence);
  }
  EXPECT_EQ(sequences, (std::vector<std::uint64_t>{6, 7, 8}));
}

TEST(Stream, StalledSubscriberNeverBlocksThePublisher) {
  StreamingAggregator aggregator(1);
  // A stalled consumer: subscribed, tiny queue, never drains.
  const auto stalled = aggregator.subscribe(1);
  const auto healthy = aggregator.subscribe(64);

  // If push() could block on a full queue this loop would hang (the test
  // timeout would catch it); instead it must stay fast and lossy.
  const auto start = std::chrono::steady_clock::now();
  constexpr std::uint64_t kPublishes = 500;
  for (std::uint64_t i = 1; i <= kPublishes; ++i) {
    aggregator.update_reader(0, metrics_with_rounds(i), 0.0);
    (void)aggregator.publish(0.01);
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(wall_s, 30.0);

  // The stalled queue overflowed (kept 1, dropped the rest)…
  EXPECT_EQ(stalled->dropped(), kPublishes - 1);
  // …while a healthy subscriber still got the newest data.
  std::uint64_t newest = 0;
  while (auto item = healthy->poll())
    if (item->type == StreamSubscription::Item::Type::kSnapshot)
      newest = item->snapshot->sequence;
  EXPECT_EQ(newest, kPublishes);
}

TEST(Stream, ConcurrentConsumerSeesOrderedSnapshotsAndCloseWakesIt) {
  StreamingAggregator aggregator(1);
  const auto subscription = aggregator.subscribe(16);
  std::atomic<bool> done{false};
  std::vector<std::uint64_t> seen;
  std::thread consumer([&] {
    while (true) {
      auto item = subscription->wait(50);
      if (item.has_value()) {
        if (item->type == StreamSubscription::Item::Type::kSnapshot)
          seen.push_back(item->snapshot->sequence);
        continue;
      }
      if (subscription->closed()) break;  // drained + closed = stream over
    }
    done.store(true);
  });

  for (std::uint64_t i = 1; i <= 50; ++i) {
    aggregator.update_reader(0, metrics_with_rounds(i), 0.0);
    (void)aggregator.publish(0.01);
  }
  aggregator.close_all();
  consumer.join();
  EXPECT_TRUE(done.load());
  // Drop-oldest keeps sequences strictly increasing even across gaps, and
  // the newest snapshot always survives (only the oldest is ever evicted).
  ASSERT_FALSE(seen.empty());
  for (std::size_t i = 1; i < seen.size(); ++i)
    EXPECT_LT(seen[i - 1], seen[i]);
  EXPECT_EQ(seen.back(), 50u);
}

TEST(Stream, PublishSynthesizesTypedEventsFromDeltas) {
  StreamingAggregator aggregator(2);
  const auto subscription = aggregator.subscribe(32);

  obs::Metrics reader1 = metrics_with_rounds(5);
  reader1.degradations = 2;
  reader1.undelivered = 3;
  aggregator.update_reader(1, reader1, 0.0);
  (void)aggregator.publish(0.1);
  aggregator.complete_epoch(1, reader1);
  (void)aggregator.publish(0.1);

  unsigned degrades = 0, undelivered = 0, epochs = 0, snapshots = 0;
  while (auto item = subscription->poll()) {
    if (item->type == StreamSubscription::Item::Type::kSnapshot) {
      ++snapshots;
      continue;
    }
    EXPECT_EQ(item->event.reader, 1u);
    switch (item->event.kind) {
      case obs::StreamEvent::Kind::kDegrade:
        ++degrades;
        EXPECT_EQ(item->event.count, 2u);
        break;
      case obs::StreamEvent::Kind::kUndelivered:
        ++undelivered;
        EXPECT_EQ(item->event.count, 3u);
        break;
      case obs::StreamEvent::Kind::kEpoch:
        ++epochs;
        EXPECT_EQ(item->event.count, 1u);
        break;
      case obs::StreamEvent::Kind::kReaderDown:
      case obs::StreamEvent::Kind::kReaderRecovered:
        ADD_FAILURE() << "no health transition happened in this test";
        break;
    }
  }
  EXPECT_EQ(snapshots, 2u);
  EXPECT_EQ(degrades, 1u);  // only the first publish saw a delta
  EXPECT_EQ(undelivered, 1u);
  EXPECT_EQ(epochs, 1u);
}

TEST(Stream, PublishSynthesizesHealthTransitionEvents) {
  StreamingAggregator aggregator(2);
  const auto subscription = aggregator.subscribe(32);

  aggregator.set_reader_health(1, obs::ReaderHealth::kDown);
  aggregator.note_reader_crash(1);
  (void)aggregator.publish(0.1);
  aggregator.set_reader_health(1, obs::ReaderHealth::kRecovering);
  (void)aggregator.publish(0.1);  // recovering is not "recovered" yet
  aggregator.set_reader_health(1, obs::ReaderHealth::kHealthy);
  aggregator.note_reader_restart(1);
  (void)aggregator.publish(0.1);

  unsigned downs = 0, recoveries = 0;
  std::shared_ptr<const obs::MetricsSnapshot> last;
  while (auto item = subscription->poll()) {
    if (item->type == StreamSubscription::Item::Type::kSnapshot) {
      last = item->snapshot;
      continue;
    }
    EXPECT_EQ(item->event.reader, 1u);
    if (item->event.kind == obs::StreamEvent::Kind::kReaderDown) ++downs;
    if (item->event.kind == obs::StreamEvent::Kind::kReaderRecovered)
      ++recoveries;
  }
  EXPECT_EQ(downs, 1u);
  EXPECT_EQ(recoveries, 1u);
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->readers[1].health, obs::ReaderHealth::kHealthy);
  EXPECT_EQ(last->readers[1].crashes, 1u);
  EXPECT_EQ(last->readers[1].restarts, 1u);
  EXPECT_NE(obs::to_json(*last).find(R"("health":"healthy")"),
            std::string::npos);
}

// --- HTTP end to end over real sockets --------------------------------------

/// Connects to 127.0.0.1:port and returns the socket fd (or -1).
int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  timeval tv{};
  tv.tv_sec = 10;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// One blocking request/response exchange; reads until the peer closes.
std::string http_request(std::uint16_t port, const std::string& raw) {
  const int fd = connect_to(port);
  if (fd < 0) return {};
  (void)::send(fd, raw.data(), raw.size(), MSG_NOSIGNAL);
  std::string response;
  char buffer[2048];
  for (;;) {
    const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
    if (got <= 0) break;
    response.append(buffer, static_cast<std::size_t>(got));
  }
  ::close(fd);
  return response;
}

std::string http_get(std::uint16_t port, const std::string& path) {
  return http_request(port,
                      "GET " + path + " HTTP/1.1\r\nHost: t\r\n\r\n");
}

struct ServiceFixture final {
  StreamingAggregator aggregator{2};
  serve::TelemetryService service{aggregator};
  serve::HttpServer server;

  ServiceFixture() {
    service.install(server);
    server.start();  // port 0 -> ephemeral
  }
  ~ServiceFixture() { server.stop(); }

  void publish(std::uint64_t rounds) {
    aggregator.update_reader(0, metrics_with_rounds(rounds), 1e-4);
    aggregator.update_reader(1, metrics_with_rounds(rounds * 2), 2e-4);
    (void)aggregator.publish(0.25);
  }
};

TEST(Serve, RoutesServeHealthMetricsAndDashboard) {
  ServiceFixture fixture;

  // Before the first publish /metrics.json reports 503, not garbage.
  std::string response = http_get(fixture.server.port(), "/metrics.json");
  EXPECT_NE(response.find("503"), std::string::npos);
  EXPECT_NE(response.find("no snapshot"), std::string::npos);

  fixture.publish(10);
  response = http_get(fixture.server.port(), "/metrics.json");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find(R"("type":"snapshot")"), std::string::npos);
  EXPECT_NE(response.find(R"("rounds":10)"), std::string::npos);

  response = http_get(fixture.server.port(), "/healthz");
  EXPECT_NE(response.find(R"("status":"ok")"), std::string::npos);
  EXPECT_NE(response.find(R"("readers":2)"), std::string::npos);

  response = http_get(fixture.server.port(), "/");
  EXPECT_NE(response.find("text/html"), std::string::npos);
  EXPECT_NE(response.find("<!doctype html>"), std::string::npos);
  EXPECT_NE(response.find("EventSource"), std::string::npos);

  // Unknown route and unsupported method fail loudly and specifically.
  EXPECT_NE(http_get(fixture.server.port(), "/nope").find("404"),
            std::string::npos);
  EXPECT_NE(http_request(fixture.server.port(),
                         "POST /metrics.json HTTP/1.1\r\nHost: t\r\n\r\n")
                .find("405"),
            std::string::npos);
  EXPECT_NE(http_request(fixture.server.port(), "garbage\r\n\r\n")
                .find("400"),
            std::string::npos);
}

TEST(Serve, SseStreamsSnapshotsToAClient) {
  ServiceFixture fixture;
  fixture.publish(1);

  const int fd = connect_to(fixture.server.port());
  ASSERT_GE(fd, 0);
  const std::string request = "GET /events HTTP/1.1\r\nHost: t\r\n\r\n";
  ASSERT_GT(::send(fd, request.data(), request.size(), MSG_NOSIGNAL), 0);

  // Publish from another thread while this client reads the stream.
  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    std::uint64_t rounds = 2;
    while (!stop.load()) {
      fixture.publish(rounds++);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  std::string stream;
  char buffer[2048];
  const auto count_snapshots = [&stream] {
    std::size_t count = 0;
    for (std::size_t pos = stream.find("event: snapshot");
         pos != std::string::npos;
         pos = stream.find("event: snapshot", pos + 1))
      ++count;
    return count;
  };
  while (count_snapshots() < 3) {
    const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
    ASSERT_GT(got, 0) << "SSE stream ended early";
    stream.append(buffer, static_cast<std::size_t>(got));
  }
  stop.store(true);
  publisher.join();
  ::close(fd);

  EXPECT_NE(stream.find("text/event-stream"), std::string::npos);
  EXPECT_NE(stream.find("data: {\"type\":\"snapshot\""), std::string::npos);
}

TEST(Serve, FourConcurrentClientsAndAStalledOneAreServed) {
  ServiceFixture fixture;
  fixture.publish(1);

  // A stalled SSE client: connects, sends the request, never reads. The
  // server must keep serving everyone else regardless.
  const int stalled_fd = connect_to(fixture.server.port());
  ASSERT_GE(stalled_fd, 0);
  const std::string sse_request = "GET /events HTTP/1.1\r\nHost: t\r\n\r\n";
  ASSERT_GT(::send(stalled_fd, sse_request.data(), sse_request.size(),
                   MSG_NOSIGNAL),
            0);

  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    std::uint64_t rounds = 2;
    while (!stop.load()) {
      fixture.publish(rounds++);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  std::atomic<unsigned> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&fixture, &failures] {
      for (int i = 0; i < 10; ++i) {
        const std::string response =
            http_get(fixture.server.port(), i % 2 == 0 ? "/metrics.json"
                                                       : "/healthz");
        if (response.find("200 OK") == std::string::npos)
          failures.fetch_add(1);
      }
    });
  }
  for (auto& client : clients) client.join();
  stop.store(true);
  publisher.join();
  EXPECT_EQ(failures.load(), 0u);
  ::close(stalled_fd);
}

TEST(Serve, HealthzReportsPerReaderHealthAndDegradedStatus) {
  ServiceFixture fixture;
  fixture.aggregator.set_reader_health(1, obs::ReaderHealth::kDown);
  fixture.publish(3);

  const std::string response = http_get(fixture.server.port(), "/healthz");
  EXPECT_NE(response.find(R"("status":"degraded")"), std::string::npos);
  EXPECT_NE(response.find(R"("reader_health":["healthy","down"])"),
            std::string::npos);

  fixture.aggregator.set_reader_health(1, obs::ReaderHealth::kHealthy);
  fixture.publish(4);
  EXPECT_NE(http_get(fixture.server.port(), "/healthz")
                .find(R"("status":"ok")"),
            std::string::npos);
}

// --- Hostile-client hardening -----------------------------------------------

/// A server with tight request-head bounds for abuse tests: tiny recv
/// timeout, few reads allowed, small byte cap.
struct HardenedFixture final {
  StreamingAggregator aggregator{1};
  serve::TelemetryService service{aggregator};
  serve::HttpServer server;

  HardenedFixture()
      : server([] {
          serve::HttpServer::Config config;
          config.recv_timeout_ms = 200;
          config.max_request_reads = 4;
          config.max_request_bytes = 512;
          return config;
        }()) {
    service.install(server);
    server.start();
  }
  ~HardenedFixture() { server.stop(); }
};

TEST(Serve, SlowLorisIsCutOffByTheReadCap) {
  HardenedFixture fixture;

  // Drip one byte per send, never finishing the head. The read cap must
  // end this in ~max_request_reads recvs, not after the byte cap fills.
  const auto start = std::chrono::steady_clock::now();
  const int fd = connect_to(fixture.server.port());
  ASSERT_GE(fd, 0);
  std::string response;
  char buffer[512];
  for (int i = 0; i < 64; ++i) {
    if (::send(fd, "G", 1, MSG_NOSIGNAL) <= 0) break;
    const ssize_t got = ::recv(fd, buffer, sizeof(buffer), MSG_DONTWAIT);
    if (got > 0) response.append(buffer, static_cast<std::size_t>(got));
    if (got == 0) break;  // server hung up on us
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (;;) {  // drain whatever the server sent before it hung up
    const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
    if (got <= 0) break;
    response.append(buffer, static_cast<std::size_t>(got));
  }
  ::close(fd);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  EXPECT_NE(response.find("431"), std::string::npos) << response;
  // 4 reads x 200 ms timeout bounds the worst case near 0.8 s; the drip
  // keeps each recv fast, so seconds of slack is a loose, unflaky bound.
  EXPECT_LT(wall_s, 5.0);

  // The server is still perfectly healthy for everyone else.
  fixture.aggregator.update_reader(0, metrics_with_rounds(1), 0.0);
  (void)fixture.aggregator.publish(0.1);
  EXPECT_NE(http_get(fixture.server.port(), "/healthz")
                .find("200 OK"),
            std::string::npos);
}

TEST(Serve, OversizedRequestHeadGets431) {
  HardenedFixture fixture;
  // 600 bytes of header noise with no terminator: over the 512-byte cap.
  std::string raw = "GET / HTTP/1.1\r\n";
  raw += "X-Junk: " + std::string(600, 'a') + "\r\n";
  const std::string response = http_request(fixture.server.port(), raw);
  EXPECT_NE(response.find("431"), std::string::npos) << response;
}

TEST(Serve, SilentClientTimesOutWith408AndStopNeverWedges) {
  HardenedFixture fixture;
  // Connect and send nothing: the 200 ms SO_RCVTIMEO must turn this into
  // a 408, and stop() afterwards must not hang on the connection.
  const int fd = connect_to(fixture.server.port());
  ASSERT_GE(fd, 0);
  std::string response;
  char buffer[256];
  for (;;) {
    const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
    if (got <= 0) break;
    response.append(buffer, static_cast<std::size_t>(got));
  }
  ::close(fd);
  EXPECT_NE(response.find("408"), std::string::npos) << response;
  fixture.server.stop();  // bounded: joins the (finished) worker
}

TEST(Serve, StopIsGracefulIdempotentAndEndsLiveStreams) {
  auto fixture = std::make_unique<ServiceFixture>();
  const std::uint16_t port = fixture->server.port();
  fixture->publish(1);

  // A live SSE client at shutdown time: stop() must end the stream (the
  // client sees EOF) instead of leaving the connection dangling.
  const int fd = connect_to(port);
  ASSERT_GE(fd, 0);
  const std::string request = "GET /events HTTP/1.1\r\nHost: t\r\n\r\n";
  ASSERT_GT(::send(fd, request.data(), request.size(), MSG_NOSIGNAL), 0);
  char buffer[512];
  ASSERT_GT(::recv(fd, buffer, sizeof(buffer), 0), 0);  // headers arrived

  fixture->aggregator.close_all();
  fixture->server.stop();
  fixture->server.stop();  // idempotent

  // Drain to EOF: a closed stream, not a hang.
  for (;;) {
    const ssize_t got = ::recv(fd, buffer, sizeof(buffer), 0);
    if (got <= 0) break;
  }
  ::close(fd);

  // The port no longer accepts connections.
  EXPECT_LT(connect_to(port), 0);
  fixture.reset();  // double-stop through the destructor is also safe
}

}  // namespace
}  // namespace rfid
