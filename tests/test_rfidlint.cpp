// tools/rfidlint fixture tests: exact rule IDs and line numbers per
// violation fixture for every analyzer, clean passes for the passing and
// allowlist fixtures, layer-spec parsing (including the checked-in repo
// spec rejecting an artificial upward include), and direct lint_source
// cases for the tokenizer and pragma edge cases.
#include "rfidlint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

namespace {

std::string fixture(const std::string& name) {
  return std::string(RFIDLINT_FIXTURE_DIR) + "/" + name;
}

/// (rule, line) pairs of a fixture's findings, in report order.
std::vector<std::pair<std::string, std::size_t>> findings_of(
    const std::string& name, const rfidlint::Options& options = {},
    std::string_view rel = {}) {
  std::vector<std::pair<std::string, std::size_t>> out;
  for (const rfidlint::Finding& finding :
       rfidlint::lint_file(fixture(name), options, rel))
    out.emplace_back(finding.rule, finding.line);
  return out;
}

using Expected = std::vector<std::pair<std::string, std::size_t>>;

// --- detlint-era fixtures (analyzer zero + rng-purity) ----------------------

TEST(Rfidlint, CleanFixturePasses) {
  EXPECT_EQ(findings_of("clean.cpp"), Expected{});
}

TEST(Rfidlint, WallClockFixture) {
  EXPECT_EQ(findings_of("wall_clock.cpp"),
            (Expected{{"wall-clock", 8}, {"wall-clock", 12}}));
}

TEST(Rfidlint, BannedRngFixture) {
  EXPECT_EQ(findings_of("banned_rng.cpp"),
            (Expected{{"banned-rng", 8},
                      {"banned-rng", 9},
                      {"banned-rng", 13}}));
}

TEST(Rfidlint, UnorderedIterationFixture) {
  EXPECT_EQ(findings_of("unordered_iteration.cpp"),
            (Expected{{"unordered-iteration", 15},
                      {"unordered-iteration", 17}}));
}

TEST(Rfidlint, UnnamedRngStreamFixture) {
  EXPECT_EQ(findings_of("unnamed_rng_stream.cpp"),
            (Expected{{"unnamed-rng-stream", 16},
                      {"unnamed-rng-stream", 17}}));
}

TEST(Rfidlint, AllowPragmaSuppresses) {
  EXPECT_EQ(findings_of("allow_pragma.cpp"), Expected{});
}

TEST(Rfidlint, MalformedPragmasAreFindingsAndDoNotSuppress) {
  EXPECT_EQ(findings_of("bad_pragma.cpp"), (Expected{{"bad-pragma", 9},
                                                     {"banned-rng", 9},
                                                     {"bad-pragma", 13},
                                                     {"banned-rng", 13},
                                                     {"bad-pragma", 17},
                                                     {"banned-rng", 17}}));
}

TEST(Rfidlint, LegacyPrefixSuppressesWithWarning) {
  const auto findings = rfidlint::lint_file(fixture("legacy_pragma.cpp"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "legacy-pragma");
  EXPECT_EQ(findings[0].line, 10u);
  EXPECT_EQ(findings[0].severity, rfidlint::Severity::kWarning);
  // The warning alone must not fail a run.
  EXPECT_FALSE(rfidlint::has_errors(findings));
}

// --- hotpath-alloc analyzer -------------------------------------------------

TEST(Rfidlint, HotpathCleanFixturePasses) {
  EXPECT_EQ(findings_of("hotpath_clean.cpp"), Expected{});
}

TEST(Rfidlint, HotpathAllocFixture) {
  EXPECT_EQ(findings_of("hotpath_alloc.cpp"),
            (Expected{{"hotpath-alloc", 17},
                      {"hotpath-alloc", 18},
                      {"hotpath-alloc", 19},
                      {"hotpath-alloc", 20},
                      {"hotpath-alloc", 21}}));
}

// --- rng-purity analyzer (draw-position contract) ---------------------------

TEST(Rfidlint, RngPositionPureCleanFixturePasses) {
  EXPECT_EQ(findings_of("rng_pure_clean.cpp"), Expected{});
}

TEST(Rfidlint, ConditionalDrawFixture) {
  EXPECT_EQ(findings_of("rng_pure_conditional.cpp"),
            (Expected{{"conditional-draw", 19}, {"conditional-draw", 24}}));
}

// --- phase-accounting analyzer ----------------------------------------------

TEST(Rfidlint, PhaseCleanFixturePasses) {
  EXPECT_EQ(findings_of("phase_clean.cpp"), Expected{});
}

TEST(Rfidlint, PhaseUnphasedFixture) {
  EXPECT_EQ(findings_of("phase_unphased.cpp"),
            (Expected{{"unphased-charge", 21}, {"raw-phase-mutation", 25}}));
}

TEST(Rfidlint, ObsLayerIsExemptFromPhaseRules) {
  rfidlint::Options options;
  EXPECT_EQ(findings_of("phase_unphased.cpp", options,
                        "src/obs/phase_unphased.cpp"),
            Expected{});
}

// --- layer-graph analyzer ---------------------------------------------------

class LayerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = rfidlint::load_layer_spec(fixture("layer_tree/layers.spec"));
    ASSERT_TRUE(spec_.ok());
    options_.layers = &spec_;
  }
  [[nodiscard]] Expected tree_findings(const std::string& rel) {
    return findings_of("layer_tree/" + rel, options_, rel);
  }
  rfidlint::LayerSpec spec_;
  rfidlint::Options options_;
};

TEST_F(LayerFixture, DownwardAndIntraLayerEdgesPass) {
  EXPECT_EQ(tree_findings("src/common/ok.hpp"), Expected{});
  EXPECT_EQ(tree_findings("src/sim/engine.hpp"), Expected{});
}

TEST_F(LayerFixture, UpwardIncludeIsRejected) {
  EXPECT_EQ(tree_findings("src/common/upward.hpp"),
            (Expected{{"layer-violation", 5}}));
}

TEST_F(LayerFixture, IncludeOfUndeclaredLayerIsRejected) {
  EXPECT_EQ(tree_findings("src/sim/stray.hpp"),
            (Expected{{"undeclared-layer", 5}}));
}

TEST_F(LayerFixture, FileInUndeclaredLayerIsRejected) {
  EXPECT_EQ(tree_findings("src/widgets/widget.hpp"),
            (Expected{{"undeclared-layer", 1}}));
}

TEST_F(LayerFixture, TopScopesMayIncludeAnything) {
  EXPECT_EQ(tree_findings("tools/probe.hpp"), Expected{});
}

TEST(Rfidlint, BadLayerSpecReportsEveryParseError) {
  const rfidlint::LayerSpec spec =
      rfidlint::load_layer_spec(fixture("layer_bad.spec"));
  ASSERT_EQ(spec.errors.size(), 4u);
  EXPECT_EQ(spec.errors[0].line, 7u);  // dep not declared above its user
  EXPECT_EQ(spec.errors[1].line, 8u);  // unknown keyword
  EXPECT_EQ(spec.errors[2].line, 9u);  // duplicate layer
  EXPECT_EQ(spec.errors[3].line, 10u);  // 'top' arity
}

TEST(Rfidlint, UnreadableLayerSpecIsAnError) {
  const rfidlint::LayerSpec spec =
      rfidlint::load_layer_spec(fixture("does_not_exist.spec"));
  EXPECT_FALSE(spec.ok());
}

TEST(Rfidlint, RepoSpecRejectsArtificialUpwardInclude) {
  // The checked-in DAG must reject an analysis → sim edge (the back-edge
  // this PR removed from src/analysis/energy_model.hpp) and an obs → sim
  // edge, without touching the real tree.
  const rfidlint::LayerSpec spec =
      rfidlint::load_layer_spec(RFIDLINT_REPO_LAYERS);
  ASSERT_TRUE(spec.ok());
  rfidlint::Options options;
  options.layers = &spec;
  const auto analysis_up = rfidlint::lint_source(
      "fake.hpp", "#include \"sim/metrics.hpp\"\n", options,
      "src/analysis/fake.hpp");
  ASSERT_EQ(analysis_up.size(), 1u);
  EXPECT_EQ(analysis_up[0].rule, "layer-violation");
  const auto obs_up = rfidlint::lint_source(
      "fake.hpp", "#include \"sim/air_loop.hpp\"\n", options,
      "src/obs/fake.hpp");
  ASSERT_EQ(obs_up.size(), 1u);
  EXPECT_EQ(obs_up[0].rule, "layer-violation");
  // ...while the fixed include and the sanctioned downward edges pass.
  EXPECT_TRUE(rfidlint::lint_source("fake.hpp",
                                    "#include \"obs/metrics.hpp\"\n", options,
                                    "src/analysis/fake.hpp")
                  .empty());
  EXPECT_TRUE(rfidlint::lint_source("fake.hpp",
                                    "#include \"protocols/polling.hpp\"\n",
                                    options, "src/core/fake.hpp")
                  .empty());
}

// --- framework behavior -----------------------------------------------------

TEST(Rfidlint, AnalyzerFilterDisablesOtherRules) {
  rfidlint::Options options;
  options.analyzers = {"determinism"};
  const auto findings = rfidlint::lint_source(
      "t.cpp",
      "long t = std::chrono::system_clock::now().time_since_epoch().count();\n"
      "int a = std::rand();\n",
      options);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "wall-clock");
}

TEST(Rfidlint, HotpathMarkerWithoutBlockIsBadPragma) {
  const auto findings = rfidlint::lint_source(
      "t.cpp", "// rfidlint: hotpath(orphan)\nint x = 0;\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "bad-pragma");
  EXPECT_EQ(findings[0].line, 1u);
}

TEST(Rfidlint, RegionMarkerNeedsRfidlintSpelling) {
  const auto findings = rfidlint::lint_source(
      "t.cpp", "// detlint: hotpath(engine)\nvoid f() { g(); }\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "bad-pragma");
}

// --- lint_source edge cases -------------------------------------------------

TEST(Rfidlint, CommentsAndStringsAreInvisible) {
  const auto findings = rfidlint::lint_source(
      "t.cpp",
      "// std::rand() in a comment\n"
      "/* system_clock in a block\n   comment spanning lines */\n"
      "const char* s = \"random_device\";\n"
      "const char* r = R\"(for (x : some_unordered_set.begin()))\";\n");
  EXPECT_TRUE(findings.empty());
}

TEST(Rfidlint, PreprocessorLinesAreSkipped) {
  const auto findings = rfidlint::lint_source(
      "t.cpp",
      "#include <unordered_map>\n"
      "#include <ctime>\n"
      "#define DRAW() rng()\n");
  EXPECT_TRUE(findings.empty());
}

TEST(Rfidlint, MultiLineRangeForIsStillCaught) {
  // The declared name and the `:` land on the same physical line even when
  // the for-header wraps — the token-level check keys on that.
  const auto findings = rfidlint::lint_source(
      "t.cpp",
      "std::unordered_map<int, long> table;\n"
      "for (const auto& [k, v]\n"
      "     : table)\n"
      "  use(k, v);\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unordered-iteration");
  EXPECT_EQ(findings[0].line, 3u);
}

TEST(Rfidlint, StandalonePragmaCoversOnlyNextCodeLine) {
  const auto findings = rfidlint::lint_source(
      "t.cpp",
      "// rfidlint: allow(banned-rng) — first call audited\n"
      "int a = std::rand();\n"
      "int b = std::rand();\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3u);
  EXPECT_EQ(findings[0].rule, "banned-rng");
}

TEST(Rfidlint, PragmaForOneRuleDoesNotSuppressAnother) {
  const auto findings = rfidlint::lint_source(
      "t.cpp",
      "int a = std::rand();  // rfidlint: allow(wall-clock) — wrong rule\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "banned-rng");
}

TEST(Rfidlint, RuleIdsAreStable) {
  const std::vector<std::string> expected{
      "wall-clock",      "banned-rng",       "unordered-iteration",
      "unnamed-rng-stream", "bad-pragma",    "legacy-pragma",
      "layer-violation", "undeclared-layer", "layer-spec",
      "hotpath-alloc",   "conditional-draw", "unphased-charge",
      "raw-phase-mutation"};
  EXPECT_EQ(rfidlint::rule_ids(), expected);
  // The detlint-era vocabulary survives as a prefix: no coverage
  // regression for existing pragmas and muscle memory.
  const std::vector<std::string> detlint_era{"wall-clock", "banned-rng",
                                             "unordered-iteration",
                                             "unnamed-rng-stream",
                                             "bad-pragma"};
  ASSERT_GE(rfidlint::rule_ids().size(), detlint_era.size());
  EXPECT_TRUE(std::equal(detlint_era.begin(), detlint_era.end(),
                         rfidlint::rule_ids().begin()));
}

TEST(Rfidlint, AnalyzerRegistryIsStable) {
  std::vector<std::string> names;
  for (const rfidlint::Analyzer* analyzer : rfidlint::analyzers())
    names.emplace_back(analyzer->name());
  const std::vector<std::string> expected{"determinism", "layer-graph",
                                          "hotpath-alloc", "rng-purity",
                                          "phase-accounting"};
  EXPECT_EQ(names, expected);
}

TEST(Rfidlint, UnreadableFileIsAnIoError) {
  const auto findings = rfidlint::lint_file(fixture("does_not_exist.cpp"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "io-error");
}

TEST(Rfidlint, CollectSourcesIsSortedAndComplete) {
  const auto files = rfidlint::collect_sources(RFIDLINT_FIXTURE_DIR);
  ASSERT_EQ(files.size(), 20u);
  EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));
}

}  // namespace
