// Channel-noise (failure-injection) tests: with a nonzero reply error rate
// every protocol must still deliver a complete, correct collection — under
// C1G2 an unacknowledged tag stays awake, so garbled replies simply feed
// back into later rounds (or immediate retries for the conventional family).
#include <gtest/gtest.h>

#include "core/polling.hpp"

namespace rfid {
namespace {

using core::ProtocolKind;

struct NoiseCase final {
  ProtocolKind kind;
  double error_rate;
};

class NoiseSweep : public ::testing::TestWithParam<NoiseCase> {};

TEST_P(NoiseSweep, CompleteAndCorrectUnderNoise) {
  const auto [kind, rate] = GetParam();
  Xoshiro256ss rng(99);
  const auto pop = tags::TagPopulation::uniform_random(800, rng)
                       .with_random_payloads(8, rng);
  sim::SessionConfig config;
  config.info_bits = 8;
  config.seed = 5;
  config.reply_error_rate = rate;
  const auto report = core::collect_info(kind, pop, config);
  EXPECT_TRUE(report.verification.ok)
      << report.result.protocol << ": " << report.verification.message;
  EXPECT_EQ(report.result.metrics.polls, 800u);
  EXPECT_GT(report.result.metrics.corrupted, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, NoiseSweep,
    ::testing::Values(NoiseCase{ProtocolKind::kCpp, 0.1},
                      NoiseCase{ProtocolKind::kPrefixCpp, 0.1},
                      NoiseCase{ProtocolKind::kCodedPolling, 0.1},
                      NoiseCase{ProtocolKind::kHpp, 0.1},
                      NoiseCase{ProtocolKind::kHpp, 0.3},
                      NoiseCase{ProtocolKind::kEhpp, 0.2},
                      NoiseCase{ProtocolKind::kTpp, 0.1},
                      NoiseCase{ProtocolKind::kTpp, 0.3},
                      NoiseCase{ProtocolKind::kMic, 0.2},
                      NoiseCase{ProtocolKind::kSic, 0.2},
                      NoiseCase{ProtocolKind::kDfsa, 0.2}),
    [](const auto& param_info) {
      return std::string(protocols::to_string(param_info.param.kind)) + "_p" +
             std::to_string(int(param_info.param.error_rate * 100));
    });

TEST(Noise, CorruptionRateMatchesConfiguredProbability) {
  Xoshiro256ss rng(1);
  const auto pop = tags::TagPopulation::uniform_random(5000, rng);
  sim::SessionConfig config;
  config.seed = 2;
  config.reply_error_rate = 0.2;
  const auto result =
      protocols::make_protocol(ProtocolKind::kTpp)->run(pop, config);
  // Each successful poll is preceded by Geometric(0.2) failures: expected
  // corrupted ~= polls * p/(1-p) = 1250.
  const double expected = 5000.0 * 0.2 / 0.8;
  EXPECT_NEAR(double(result.metrics.corrupted), expected, expected * 0.15);
}

TEST(Noise, NoiseCostsTime) {
  Xoshiro256ss rng(3);
  const auto pop = tags::TagPopulation::uniform_random(2000, rng);
  sim::SessionConfig clean;
  clean.seed = 4;
  sim::SessionConfig noisy = clean;
  noisy.reply_error_rate = 0.25;
  const auto protocol = protocols::make_protocol(ProtocolKind::kTpp);
  const auto fast = protocol->run(pop, clean);
  const auto slow = protocol->run(pop, noisy);
  EXPECT_GT(slow.exec_time_s(), fast.exec_time_s() * 1.15);
}

TEST(Noise, ZeroRateIsNoiseless) {
  Xoshiro256ss rng(5);
  const auto pop = tags::TagPopulation::uniform_random(500, rng);
  sim::SessionConfig config;
  config.seed = 6;
  const auto result =
      protocols::make_protocol(ProtocolKind::kHpp)->run(pop, config);
  EXPECT_EQ(result.metrics.corrupted, 0u);
}

TEST(Noise, DeterministicUnderSeed) {
  Xoshiro256ss rng(7);
  const auto pop = tags::TagPopulation::uniform_random(700, rng);
  sim::SessionConfig config;
  config.seed = 8;
  config.reply_error_rate = 0.15;
  const auto protocol = protocols::make_protocol(ProtocolKind::kEhpp);
  const auto a = protocol->run(pop, config);
  const auto b = protocol->run(pop, config);
  EXPECT_EQ(a.metrics.corrupted, b.metrics.corrupted);
  EXPECT_DOUBLE_EQ(a.metrics.time_us, b.metrics.time_us);
}

TEST(Noise, CombinesWithMissingTags) {
  // Noise and absence together: missing detection must stay exact.
  Xoshiro256ss rng(9);
  const auto pop = tags::TagPopulation::uniform_random(600, rng);
  std::unordered_set<TagId, TagIdHash> present;
  for (std::size_t i = 0; i < pop.size(); ++i)
    if (i % 20 != 0) present.insert(pop[i].id());
  sim::SessionConfig config;
  config.seed = 10;
  config.reply_error_rate = 0.2;
  const auto report =
      core::find_missing_tags(ProtocolKind::kTpp, pop, present, config);
  EXPECT_TRUE(report.exact);
  EXPECT_EQ(report.missing.size(), 30u);
}

TEST(Noise, TppStillBeatsCppUnderHeavyNoise) {
  // The ranking of the paper is noise-robust: short vectors win even when
  // one reply in four is lost.
  Xoshiro256ss rng(11);
  const auto pop = tags::TagPopulation::uniform_random(2000, rng);
  sim::SessionConfig config;
  config.seed = 12;
  config.reply_error_rate = 0.25;
  const auto tpp =
      protocols::make_protocol(ProtocolKind::kTpp)->run(pop, config);
  const auto cpp =
      protocols::make_protocol(ProtocolKind::kCpp)->run(pop, config);
  EXPECT_LT(tpp.exec_time_s() * 3, cpp.exec_time_s());
}

}  // namespace
}  // namespace rfid
