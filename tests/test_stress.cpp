// Scale/stress tests. Kept modest by default; set RFID_STRESS_N to push
// harder (e.g. 200000) on beefier machines.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>

#include "common/env.hpp"
#include "core/polling.hpp"
#include "sim/trace_io.hpp"

namespace rfid {
namespace {

using core::ProtocolKind;

std::size_t stress_n() {
  return static_cast<std::size_t>(env_u64("RFID_STRESS_N", 50000));
}

TEST(Stress, TppAtScaleStaysOnHeadlineNumbers) {
  Xoshiro256ss rng(1);
  const auto pop = tags::TagPopulation::uniform_random(stress_n(), rng);
  sim::SessionConfig config;
  config.seed = 2;
  config.keep_records = false;
  const auto result =
      protocols::make_protocol(ProtocolKind::kTpp)->run(pop, config);
  EXPECT_EQ(result.metrics.polls, pop.size());
  EXPECT_GT(result.avg_vector_bits(), 2.7);
  EXPECT_LT(result.avg_vector_bits(), 3.5);
}

TEST(Stress, AllProtocolsCompleteAtScale) {
  Xoshiro256ss rng(3);
  const std::size_t n = stress_n() / 2;
  const auto pop = tags::TagPopulation::uniform_random(n, rng);
  sim::SessionConfig config;
  config.seed = 4;
  config.keep_records = false;
  for (const ProtocolKind kind : protocols::all_protocols()) {
    const auto result = protocols::make_protocol(kind)->run(pop, config);
    EXPECT_EQ(result.metrics.polls, n) << protocols::to_string(kind);
  }
}

TEST(Stress, TraceCsvRoundTripsAtScale) {
  Xoshiro256ss rng(5);
  const auto pop = tags::TagPopulation::uniform_random(10000, rng);
  sim::SessionConfig config;
  config.seed = 6;
  config.keep_records = false;
  config.keep_trace = true;
  const auto result =
      protocols::make_protocol(ProtocolKind::kHpp)->run(pop, config);
  ASSERT_FALSE(result.trace.empty());
  const std::string path = testing::TempDir() + "rfid_trace.csv";
  sim::write_trace_csv(result, path);
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, result.trace.size() + 1);  // header + rows
  std::remove(path.c_str());
}

TEST(Stress, MemoryBoundedRunWithoutRecords) {
  // keep_records=false must not allocate per-tag records.
  Xoshiro256ss rng(7);
  const auto pop = tags::TagPopulation::uniform_random(20000, rng);
  sim::SessionConfig config;
  config.seed = 8;
  config.keep_records = false;
  const auto result =
      protocols::make_protocol(ProtocolKind::kEhpp)->run(pop, config);
  EXPECT_TRUE(result.records.empty());
  EXPECT_EQ(result.metrics.polls, 20000u);
}

TEST(Stress, SimulatedSecondsFarExceedWallSeconds) {
  // The simulator must be usefully faster than real C1G2 air time; at
  // n = 10k TPP simulates ~4.4 s of air in well under a second of CPU.
  Xoshiro256ss rng(9);
  const auto pop = tags::TagPopulation::uniform_random(10000, rng);
  sim::SessionConfig config;
  config.seed = 10;
  config.keep_records = false;
  const auto start = std::chrono::steady_clock::now();
  const auto result =
      protocols::make_protocol(ProtocolKind::kTpp)->run(pop, config);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GT(result.exec_time_s(), wall_s);
}

}  // namespace
}  // namespace rfid
