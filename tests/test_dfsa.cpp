// Tests for the DFSA baseline.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "protocols/dfsa.hpp"
#include "sim/verify.hpp"

namespace rfid::protocols {
namespace {

sim::RunResult run_dfsa(std::size_t n, std::uint64_t seed,
                        Dfsa::Config config = Dfsa::Config()) {
  Xoshiro256ss rng(seed);
  const auto pop = tags::TagPopulation::uniform_random(n, rng);
  sim::SessionConfig session;
  session.seed = seed + 1;
  return Dfsa(config).run(pop, session);
}

TEST(Dfsa, CompleteCollection) {
  Xoshiro256ss rng(1);
  const auto pop = tags::TagPopulation::uniform_random(1500, rng)
                       .with_random_payloads(4, rng);
  sim::SessionConfig session;
  session.info_bits = 4;
  const auto result = Dfsa().run(pop, session);
  const auto verify = sim::verify_complete_collection(pop, result);
  EXPECT_TRUE(verify.ok) << verify.message;
}

TEST(Dfsa, WasteNearClassicAlohaOptimum) {
  // At f = n, useful slots ~ 1/e of the frame: waste ~ 63.2%.
  const auto result = run_dfsa(20000, 2);
  EXPECT_NEAR(result.metrics.waste_fraction(), 0.632, 0.03);
}

TEST(Dfsa, SlowerThanPollingProtocols) {
  // Section I: slot waste is why ALOHA loses to polling when the reader
  // already knows the IDs.
  const auto result = run_dfsa(5000, 3);
  EXPECT_EQ(result.metrics.polls, 5000u);
  EXPECT_GT(result.metrics.slots_wasted, 2500u);
}

TEST(Dfsa, FrameFactorTradesEmptiesForCollisions) {
  const auto tight = run_dfsa(5000, 4, Dfsa::Config{.frame_factor = 0.5});
  const auto loose = run_dfsa(5000, 4, Dfsa::Config{.frame_factor = 2.0});
  EXPECT_EQ(tight.metrics.polls, 5000u);
  EXPECT_EQ(loose.metrics.polls, 5000u);
  EXPECT_GT(loose.channel.empty_slots, tight.channel.empty_slots);
  EXPECT_GT(tight.channel.collision_slots, loose.channel.collision_slots);
}

TEST(Dfsa, UnknownPopulationEstimatorConverges) {
  // Schoute-estimated frames must still read everyone, starting from a
  // frame size far off the true population in both directions.
  for (const std::size_t initial : {8u, 128u, 8192u}) {
    Xoshiro256ss rng(50 + initial);
    const auto pop = tags::TagPopulation::uniform_random(2000, rng);
    sim::SessionConfig config;
    config.seed = 51 + initial;
    const auto result =
        Dfsa(Dfsa::Config{.known_population = false,
                          .initial_frame = initial})
            .run(pop, config);
    EXPECT_EQ(result.metrics.polls, 2000u) << initial;
  }
}

TEST(Dfsa, EstimatorCostsLittleVersusOracle) {
  // With a reasonable initial frame the estimator lands within ~25% of the
  // oracle-sized schedule.
  Xoshiro256ss rng(60);
  const auto pop = tags::TagPopulation::uniform_random(5000, rng);
  sim::SessionConfig config;
  config.seed = 61;
  const auto oracle = Dfsa().run(pop, config);
  const auto estimated =
      Dfsa(Dfsa::Config{.known_population = false, .initial_frame = 1024})
          .run(pop, config);
  EXPECT_LT(estimated.exec_time_s(), oracle.exec_time_s() * 1.3);
}

TEST(Dfsa, CaptureEffectSpeedsUpInventory) {
  // With capture, some collision slots still read a tag, so the same
  // population finishes in less air time; collection stays exact.
  Xoshiro256ss rng(40);
  const auto pop = tags::TagPopulation::uniform_random(4000, rng)
                       .with_random_payloads(4, rng);
  sim::SessionConfig plain;
  plain.seed = 41;
  plain.info_bits = 4;
  sim::SessionConfig capture = plain;
  capture.capture_probability = 0.5;
  const auto slow = Dfsa().run(pop, plain);
  const auto fast = Dfsa().run(pop, capture);
  EXPECT_EQ(fast.metrics.polls, 4000u);
  EXPECT_LT(fast.exec_time_s(), slow.exec_time_s());
  const auto verify = sim::verify_complete_collection(pop, fast);
  EXPECT_TRUE(verify.ok) << verify.message;
}

TEST(Dfsa, FullCaptureReadsOnePerBusySlot) {
  // capture_probability = 1: every busy slot yields exactly one read.
  Xoshiro256ss rng(42);
  const auto pop = tags::TagPopulation::uniform_random(1000, rng);
  sim::SessionConfig config;
  config.seed = 43;
  config.capture_probability = 1.0;
  const auto result = Dfsa().run(pop, config);
  EXPECT_EQ(result.metrics.polls, 1000u);
  // Wasted slots are now only the empties.
  EXPECT_EQ(result.metrics.slots_wasted,
            result.channel.empty_slots);
}

TEST(Dfsa, CaptureAndNoiseTogetherStayExact) {
  // Capture rescues some collisions while noise drops some singletons;
  // the combination must still collect everyone exactly once.
  Xoshiro256ss rng(70);
  const auto pop = tags::TagPopulation::uniform_random(2000, rng)
                       .with_random_payloads(8, rng);
  sim::SessionConfig config;
  config.seed = 71;
  config.info_bits = 8;
  config.capture_probability = 0.3;
  config.reply_error_rate = 0.15;
  const auto result = Dfsa().run(pop, config);
  EXPECT_EQ(result.metrics.polls, 2000u);
  EXPECT_GT(result.metrics.corrupted, 0u);
  const auto verify = sim::verify_complete_collection(pop, result);
  EXPECT_TRUE(verify.ok) << verify.message;
}

TEST(Dfsa, RejectsPresenceFilter) {
  Xoshiro256ss rng(5);
  const auto pop = tags::TagPopulation::uniform_random(10, rng);
  std::unordered_set<TagId, TagIdHash> present{pop[0].id()};
  sim::SessionConfig config;
  config.present = &present;
  EXPECT_THROW((void)Dfsa().run(pop, config), ContractViolation);
}

TEST(Dfsa, DeterministicReplay) {
  const auto a = run_dfsa(2000, 6);
  const auto b = run_dfsa(2000, 6);
  EXPECT_EQ(a.metrics.slots_total, b.metrics.slots_total);
  EXPECT_DOUBLE_EQ(a.metrics.time_us, b.metrics.time_us);
}

class DfsaSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DfsaSweep, Complete) {
  const std::size_t n = GetParam();
  EXPECT_EQ(run_dfsa(n, 7 * n + 1).metrics.polls, n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DfsaSweep,
                         ::testing::Values(1, 2, 9, 100, 1000, 5000));

}  // namespace
}  // namespace rfid::protocols
