// Missing-tag scenarios (the paper's Section I anti-theft use case) across
// protocols, rates, and edge cases.
#include <gtest/gtest.h>

#include "core/polling.hpp"

namespace rfid {
namespace {

using core::ProtocolKind;

struct MissingCase final {
  ProtocolKind kind;
  std::size_t n;
  std::size_t missing_every;  ///< every k-th tag is absent
};

class MissingSweep : public ::testing::TestWithParam<MissingCase> {};

TEST_P(MissingSweep, ExactAndAccounted) {
  const auto [kind, n, every] = GetParam();
  Xoshiro256ss rng(n + every);
  const auto pop = tags::TagPopulation::uniform_random(n, rng);
  std::unordered_set<TagId, TagIdHash> present;
  std::size_t expected_missing = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i % every == 0)
      ++expected_missing;
    else
      present.insert(pop[i].id());
  }
  sim::SessionConfig config;
  config.seed = 17;
  const auto report = core::find_missing_tags(kind, pop, present, config);
  EXPECT_TRUE(report.exact) << protocols::to_string(kind);
  EXPECT_EQ(report.missing.size(), expected_missing);
  EXPECT_EQ(report.result.metrics.polls, n - expected_missing);
  EXPECT_EQ(report.result.metrics.missing, expected_missing);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MissingSweep,
    ::testing::Values(MissingCase{ProtocolKind::kTpp, 1000, 2},
                      MissingCase{ProtocolKind::kTpp, 1000, 50},
                      MissingCase{ProtocolKind::kHpp, 1000, 7},
                      MissingCase{ProtocolKind::kEhpp, 2000, 9},
                      MissingCase{ProtocolKind::kMic, 1500, 4},
                      MissingCase{ProtocolKind::kSic, 500, 3},
                      MissingCase{ProtocolKind::kCpp, 300, 5},
                      MissingCase{ProtocolKind::kCodedPolling, 600, 6},
                      MissingCase{ProtocolKind::kPrefixCpp, 300, 4}),
    [](const auto& param_info) {
      return std::string(protocols::to_string(param_info.param.kind)) + "_n" +
             std::to_string(param_info.param.n) + "_e" +
             std::to_string(param_info.param.missing_every);
    });

TEST(MissingTags, AbsentPollsCostTimeButLessThanReplies) {
  Xoshiro256ss rng(1);
  const auto pop = tags::TagPopulation::uniform_random(500, rng);
  std::unordered_set<TagId, TagIdHash> all_present, half_present;
  for (std::size_t i = 0; i < pop.size(); ++i) {
    all_present.insert(pop[i].id());
    if (i % 2 == 0) half_present.insert(pop[i].id());
  }
  sim::SessionConfig config;
  config.seed = 2;
  config.info_bits = 32;  // make replies expensive so absence is visible
  const auto full =
      core::find_missing_tags(ProtocolKind::kTpp, pop, all_present, config);
  const auto half =
      core::find_missing_tags(ProtocolKind::kTpp, pop, half_present, config);
  EXPECT_TRUE(half.exact);
  EXPECT_LT(half.result.exec_time_s(), full.result.exec_time_s());
}

TEST(MissingTags, MissingIdsAreSortedAndUnique) {
  Xoshiro256ss rng(3);
  const auto pop = tags::TagPopulation::uniform_random(200, rng);
  std::unordered_set<TagId, TagIdHash> present;
  for (std::size_t i = 100; i < 200; ++i) present.insert(pop[i].id());
  const auto report =
      core::find_missing_tags(ProtocolKind::kHpp, pop, present, {});
  ASSERT_EQ(report.missing.size(), 100u);
  for (std::size_t i = 1; i < report.missing.size(); ++i)
    EXPECT_LT(report.missing[i - 1], report.missing[i]);
}

TEST(MissingTags, StrangerTagsInPresentSetIgnored) {
  // Tags in the zone but not in the expected inventory never obstruct the
  // poll (they are not scheduled; their IDs simply sit in `present`).
  Xoshiro256ss rng(4);
  const auto pop = tags::TagPopulation::uniform_random(100, rng);
  const auto strangers = tags::TagPopulation::uniform_random(50, rng);
  std::unordered_set<TagId, TagIdHash> present;
  for (const tags::Tag& tag : pop) present.insert(tag.id());
  for (const tags::Tag& tag : strangers) present.insert(tag.id());
  const auto report =
      core::find_missing_tags(ProtocolKind::kTpp, pop, present, {});
  EXPECT_TRUE(report.exact);
  EXPECT_TRUE(report.missing.empty());
}

}  // namespace
}  // namespace rfid
