// Unit tests for the CRC substrate, including the linearity property that
// rules CRCs out as coded-polling role validators (see coded_polling.hpp).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/crc.hpp"
#include "common/rng.hpp"

namespace rfid {
namespace {

std::uint16_t crc_of_string(const std::string& s) {
  return crc16_ccitt({reinterpret_cast<const std::uint8_t*>(s.data()),
                      s.size()});
}

TEST(Crc16, CheckValue123456789) {
  // CRC-16/CCITT-FALSE check value from the Rocksoft catalogue.
  EXPECT_EQ(crc_of_string("123456789"), 0x29B1);
}

TEST(Crc16, EmptyInputIsInitValue) {
  EXPECT_EQ(crc16_ccitt({}), 0xFFFF);
}

TEST(Crc16, SingleByteDiffersFromInit) {
  const std::array<std::uint8_t, 1> byte{0x00};
  EXPECT_NE(crc16_ccitt(byte), 0xFFFF);
}

TEST(Crc16, SensitiveToByteOrder) {
  EXPECT_NE(crc_of_string("ab"), crc_of_string("ba"));
}

TEST(Crc16, ConcurrentFirstUseIsRaceFree) {
  // RFID_THREADS > 1 means worker threads can hit the CRC concurrently,
  // including as the process's very first CRC calls (each discovered test
  // runs in its own process, so no earlier test has touched the table
  // here). The table is constexpr — compile-time, read-only storage, no
  // lazy first-use initialization to race on; the static_assert in crc.cpp
  // pins that. This test releases all threads at once so a regression to
  // runtime init surfaces under TSan/ASan or as a wrong check value.
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      ready.fetch_add(1);
      while (!go.load()) {
      }
      for (int i = 0; i < kIters; ++i) {
        if (crc_of_string("123456789") != 0x29B1) mismatches.fetch_add(1);
        // Walk every table entry: two passes over all 256 byte values.
        const std::array<std::uint8_t, 2> bytes{
            static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(255 - i)};
        if (crc16_ccitt(bytes) != crc16_ccitt(bytes)) mismatches.fetch_add(1);
      }
    });
  }
  while (ready.load() != kThreads) {
  }
  go.store(true);
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(Crc16OfId, MatchesByteSerialization) {
  TagId id;
  id.words = {0x01020304, 0x05060708, 0x090a0b0c};
  const std::array<std::uint8_t, 12> bytes{1, 2, 3, 4,  5,  6,
                                           7, 8, 9, 10, 11, 12};
  EXPECT_EQ(crc16_of_id(id), crc16_ccitt(bytes));
}

TEST(Crc16OfId, IsLinearOverXor) {
  // crc(a ^ b) == crc(a) ^ crc(b) ^ crc(0): GF(2) linearity. This is the
  // property that makes a CRC useless for disambiguating XOR-coded polling
  // frames — the second CRC check is implied by the first.
  Xoshiro256ss rng(1);
  TagId zero{};
  const std::uint16_t c0 = crc16_of_id(zero);
  for (int trial = 0; trial < 200; ++trial) {
    TagId a, b;
    for (auto& w : a.words) w = static_cast<std::uint32_t>(rng());
    for (auto& w : b.words) w = static_cast<std::uint32_t>(rng());
    EXPECT_EQ(crc16_of_id(a ^ b),
              crc16_of_id(a) ^ crc16_of_id(b) ^ c0);
  }
}

TEST(Crc5, MatchesBitwiseReference) {
  // Independent bit-serial reference implementation.
  const auto reference = [](std::uint32_t value, unsigned nbits) {
    std::uint8_t crc = 0b01001;
    for (unsigned i = 0; i < nbits; ++i) {
      const bool bit = (value >> (nbits - 1 - i)) & 1u;
      const bool msb = (crc >> 4) & 1u;
      crc = static_cast<std::uint8_t>((crc << 1) & 0x1F);
      if (bit != msb) crc ^= 0x09;
    }
    return crc;
  };
  Xoshiro256ss rng(2);
  for (int trial = 0; trial < 100; ++trial) {
    const auto value = static_cast<std::uint32_t>(rng() & 0x3FFFFF);
    EXPECT_EQ(crc5_c1g2(value, 22), reference(value, 22));
  }
}

TEST(Crc5, StaysWithinFiveBits) {
  Xoshiro256ss rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    EXPECT_LT(crc5_c1g2(static_cast<std::uint32_t>(rng()), 17), 32u);
  }
}

TEST(Crc5, DetectsSingleBitErrors) {
  const std::uint32_t value = 0x155555;
  const std::uint8_t good = crc5_c1g2(value, 22);
  for (unsigned bit = 0; bit < 22; ++bit) {
    EXPECT_NE(crc5_c1g2(value ^ (1u << bit), 22), good) << "bit " << bit;
  }
}

}  // namespace
}  // namespace rfid
