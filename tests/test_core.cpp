// Tests for the public facade (core/polling.hpp) and protocol registry.
#include <gtest/gtest.h>

#include "core/polling.hpp"

namespace rfid::core {
namespace {

using protocols::ProtocolKind;

TEST(Registry, NamesRoundTrip) {
  for (const ProtocolKind kind : protocols::all_protocols()) {
    const auto parsed = protocols::parse_protocol(protocols::to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
}

TEST(Registry, ParseIsCaseInsensitive) {
  EXPECT_EQ(protocols::parse_protocol("tpp"), ProtocolKind::kTpp);
  EXPECT_EQ(protocols::parse_protocol("Ehpp"), ProtocolKind::kEhpp);
  EXPECT_EQ(protocols::parse_protocol("prefixcpp"), ProtocolKind::kPrefixCpp);
}

TEST(Registry, UnknownNameRejected) {
  EXPECT_FALSE(protocols::parse_protocol("NOPE").has_value());
  EXPECT_FALSE(protocols::parse_protocol("").has_value());
}

TEST(Registry, FactoryProducesMatchingNames) {
  for (const ProtocolKind kind : protocols::all_protocols()) {
    const auto protocol = protocols::make_protocol(kind);
    EXPECT_EQ(protocol->name(), protocols::to_string(kind));
  }
}

class CollectAllProtocols : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(CollectAllProtocols, VerifiedEndToEnd) {
  Xoshiro256ss rng(7);
  const auto pop = tags::TagPopulation::uniform_random(600, rng)
                       .with_random_payloads(16, rng);
  sim::SessionConfig config;
  config.info_bits = 16;
  config.seed = 3;
  const auto report = collect_info(GetParam(), pop, config);
  EXPECT_TRUE(report.verification.ok) << report.result.protocol << ": "
                                      << report.verification.message;
  EXPECT_EQ(report.result.metrics.polls, 600u);
}

INSTANTIATE_TEST_SUITE_P(
    All, CollectAllProtocols,
    ::testing::ValuesIn(protocols::all_protocols().begin(),
                        protocols::all_protocols().end()),
    [](const auto& param_info) {
      return std::string(protocols::to_string(param_info.param));
    });

TEST(CollectInfo, EmptyPopulation) {
  const tags::TagPopulation empty;
  const auto report = collect_info(ProtocolKind::kTpp, empty, {});
  EXPECT_TRUE(report.verification.ok);
  EXPECT_EQ(report.result.metrics.polls, 0u);
}

class MissingAllPollingProtocols
    : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(MissingAllPollingProtocols, ExactIdentification) {
  Xoshiro256ss rng(8);
  const auto pop = tags::TagPopulation::uniform_random(400, rng);
  std::unordered_set<TagId, TagIdHash> present;
  for (std::size_t i = 0; i < pop.size(); ++i)
    if (i % 10 != 0) present.insert(pop[i].id());
  const auto report = find_missing_tags(GetParam(), pop, present, {});
  EXPECT_TRUE(report.exact);
  EXPECT_EQ(report.missing.size(), 40u);
  EXPECT_EQ(report.result.metrics.polls + report.result.metrics.missing,
            400u);
}

INSTANTIATE_TEST_SUITE_P(
    Polling, MissingAllPollingProtocols,
    ::testing::Values(ProtocolKind::kCpp, ProtocolKind::kPrefixCpp,
                      ProtocolKind::kCodedPolling, ProtocolKind::kHpp,
                      ProtocolKind::kEhpp, ProtocolKind::kTpp,
                      ProtocolKind::kMic, ProtocolKind::kSic),
    [](const auto& param_info) {
      return std::string(protocols::to_string(param_info.param));
    });

TEST(FindMissing, NoneMissingWhenAllPresent) {
  Xoshiro256ss rng(9);
  const auto pop = tags::TagPopulation::uniform_random(100, rng);
  std::unordered_set<TagId, TagIdHash> present;
  for (const tags::Tag& tag : pop) present.insert(tag.id());
  const auto report = find_missing_tags(ProtocolKind::kTpp, pop, present, {});
  EXPECT_TRUE(report.exact);
  EXPECT_TRUE(report.missing.empty());
}

TEST(FindMissing, AllMissingDetected) {
  Xoshiro256ss rng(10);
  const auto pop = tags::TagPopulation::uniform_random(50, rng);
  const std::unordered_set<TagId, TagIdHash> nobody;
  const auto report = find_missing_tags(ProtocolKind::kHpp, pop, nobody, {});
  EXPECT_TRUE(report.exact);
  EXPECT_EQ(report.missing.size(), 50u);
}

TEST(FindMissing, DfsaRejected) {
  Xoshiro256ss rng(11);
  const auto pop = tags::TagPopulation::uniform_random(10, rng);
  const std::unordered_set<TagId, TagIdHash> present;
  EXPECT_THROW((void)find_missing_tags(ProtocolKind::kDfsa, pop, present, {}),
               ContractViolation);
}

TEST(CompareProtocols, PaperOrderingHolds) {
  const std::array kinds = {ProtocolKind::kCpp, ProtocolKind::kHpp,
                            ProtocolKind::kEhpp, ProtocolKind::kMic,
                            ProtocolKind::kTpp};
  const auto rows = compare_protocols(kinds, 3000, 1, /*trials=*/3);
  ASSERT_EQ(rows.size(), kinds.size() + 1);
  const auto time_of = [&rows](const std::string& name) {
    for (const auto& row : rows)
      if (row.protocol == name) return row.avg_time_s;
    ADD_FAILURE() << "row " << name << " not found";
    return 0.0;
  };
  EXPECT_LT(time_of("TPP"), time_of("MIC"));
  EXPECT_LT(time_of("MIC"), time_of("EHPP"));
  EXPECT_LT(time_of("EHPP"), time_of("HPP"));
  EXPECT_LT(time_of("HPP"), time_of("CPP"));
  EXPECT_LT(time_of("LowerBound"), time_of("TPP"));
}

TEST(CompareProtocols, LowerBoundRowMatchesFormula) {
  const std::array kinds = {ProtocolKind::kTpp};
  const auto rows = compare_protocols(kinds, 1000, 32, 2);
  EXPECT_NEAR(rows.back().avg_time_s, (299.8 + 800) * 1000 * 1e-6, 1e-6);
}

}  // namespace
}  // namespace rfid::core
