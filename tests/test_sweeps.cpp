// Wide parameterized sweeps over protocol knobs — the configurations a
// deployment might actually pick — plus a state-machine conformance replay.
#include <gtest/gtest.h>

#include "core/polling.hpp"
#include "protocols/enhanced_hash_polling.hpp"
#include "protocols/mic.hpp"
#include "protocols/tree_polling.hpp"
#include "tags/state_machine.hpp"

namespace rfid {
namespace {

// --- MIC frame-factor grid --------------------------------------------------

class MicFrameFactorSweep : public ::testing::TestWithParam<double> {};

TEST_P(MicFrameFactorSweep, CompletesAndCollectsExactly) {
  const double factor = GetParam();
  Xoshiro256ss rng(11);
  const auto pop = tags::TagPopulation::uniform_random(2000, rng);
  sim::SessionConfig config;
  config.seed = 12;
  const auto result =
      protocols::Mic(protocols::Mic::Config{.frame_factor = factor})
          .run(pop, config);
  EXPECT_EQ(result.metrics.polls, 2000u);
  EXPECT_EQ(result.channel.collision_slots, 0u);
}

INSTANTIATE_TEST_SUITE_P(Factors, MicFrameFactorSweep,
                         ::testing::Values(0.25, 0.5, 0.75, 1.0, 1.5, 2.0,
                                           4.0));

// --- EHPP selection-modulus grid ---------------------------------------------

class EhppModulusSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EhppModulusSweep, SubsetSelectionWorksAtAnyResolution) {
  const std::uint64_t modulus = GetParam();
  Xoshiro256ss rng(13);
  const auto pop = tags::TagPopulation::uniform_random(3000, rng);
  sim::SessionConfig config;
  config.seed = 14;
  const auto result =
      protocols::Ehpp(
          protocols::Ehpp::Config{.selection_modulus = modulus})
          .run(pop, config);
  EXPECT_EQ(result.metrics.polls, 3000u);
}

INSTANTIATE_TEST_SUITE_P(Moduli, EhppModulusSweep,
                         ::testing::Values(1u << 10, 1u << 16, 1u << 20,
                                           1u << 29));

// --- Payload-length grid across the fast protocols ---------------------------

struct PayloadCase final {
  core::ProtocolKind kind;
  std::size_t bits;
};

class PayloadSweep : public ::testing::TestWithParam<PayloadCase> {};

TEST_P(PayloadSweep, VerifiedForEveryPayloadLength) {
  const auto [kind, bits] = GetParam();
  Xoshiro256ss rng(15);
  const auto pop = tags::TagPopulation::uniform_random(400, rng)
                       .with_random_payloads(bits, rng);
  sim::SessionConfig config;
  config.info_bits = bits;
  config.seed = 16;
  const auto report = core::collect_info(kind, pop, config);
  EXPECT_TRUE(report.verification.ok) << report.verification.message;
  // Longer payloads must cost proportionally: check tag_bits bookkeeping.
  EXPECT_EQ(report.result.metrics.tag_bits, 400u * bits);
}

std::vector<PayloadCase> payload_cases() {
  std::vector<PayloadCase> cases;
  for (const auto kind : {core::ProtocolKind::kHpp, core::ProtocolKind::kTpp,
                          core::ProtocolKind::kMic})
    for (const std::size_t bits : {1u, 8u, 16u, 32u, 64u, 128u})
      cases.push_back(PayloadCase{kind, bits});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PayloadSweep, ::testing::ValuesIn(payload_cases()),
    [](const auto& param_info) {
      return std::string(protocols::to_string(param_info.param.kind)) + "_l" +
             std::to_string(param_info.param.bits);
    });

// --- Longer payloads shrink the relative protocol gap ------------------------

TEST(PayloadScaling, RelativeGapShrinksWithPayload) {
  // Table I vs Table III trend: as l grows, reply airtime dominates and
  // TPP's advantage over HPP narrows in relative terms.
  Xoshiro256ss rng(17);
  const auto pop = tags::TagPopulation::uniform_random(3000, rng);
  sim::SessionConfig config;
  config.seed = 18;
  const auto ratio_at = [&](std::size_t l) {
    config.info_bits = l;
    const double hpp = protocols::make_protocol(core::ProtocolKind::kHpp)
                           ->run(pop, config)
                           .exec_time_s();
    const double tpp = protocols::make_protocol(core::ProtocolKind::kTpp)
                           ->run(pop, config)
                           .exec_time_s();
    return hpp / tpp;
  };
  EXPECT_GT(ratio_at(1), ratio_at(32));
}

// --- State-machine conformance of the polling interaction --------------------

TEST(StateMachineConformance, PollingSessionMapsToLegalTransitions) {
  // Replay the abstract polling interaction on C1G2 state machines: each
  // poll is Query(slot 0 for the addressed tag) -> Reply -> ACK ->
  // inventory complete; unaddressed tags sit out via the session-flag
  // mechanism. No illegal command may ever be issued.
  constexpr std::size_t kTags = 64;
  std::vector<tags::TagStateMachine> machines(kTags);
  for (std::size_t target = 0; target < kTags; ++target) {
    for (std::size_t i = 0; i < kTags; ++i) {
      // The polling vector addresses exactly one tag: model it as that tag
      // loading slot 0 while the rest skip the round (wrong target flag
      // from their perspective — they did not match the vector).
      if (i == target) {
        EXPECT_TRUE(machines[i].on_query(machines[i].inventoried(), 0));
      }
    }
    EXPECT_EQ(machines[target].state(), tags::TagState::kReply);
    EXPECT_TRUE(machines[target].on_ack());
    EXPECT_TRUE(machines[target].on_inventory_complete());
    EXPECT_EQ(machines[target].state(), tags::TagState::kReady);
  }
  for (const auto& machine : machines) {
    EXPECT_EQ(machine.illegal_commands(), 0u);
    // Every tag was inventoried exactly once: all flags flipped to B.
    EXPECT_EQ(machine.inventoried(), tags::SessionFlag::kB);
  }
}

}  // namespace
}  // namespace rfid
