// Deployment simulator tests (core/deployment.hpp): the reader-to-reader
// channel schedule (no co-channel concurrency), overlap ownership
// resolution, pure churn schedules, exact delivered-or-listed accounting,
// and shard/thread invariance of the report.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/deployment.hpp"
#include "obs/stream.hpp"
#include "parallel/thread_pool.hpp"

namespace rfid::core {
namespace {

tags::TagPopulation uniform(std::size_t n, std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  return tags::TagPopulation::uniform_random(n, rng);
}

/// Byte-stable digest of a deployment report for determinism comparisons.
std::string deployment_digest(const DeploymentReport& report) {
  std::ostringstream os;
  obs::write_json(os, report.totals);
  os << '|' << report.delivered << '|' << report.ticks << '|'
     << report.handoffs << '|' << report.churn_moves << '|'
     << report.churn_departures << '|' << report.transitions.size();
  for (const TagId& id : report.missing_ids) os << '|' << id.to_hex();
  for (const TagId& id : report.undelivered_ids) os << '|' << id.to_hex();
  for (const ChannelReport& c : report.per_channel)
    os << '|' << c.readers << ':' << c.rounds << ':' << c.busy_us;
  return os.str();
}

// --- Channel schedule -------------------------------------------------------

TEST(ChannelSchedule, PopulationsPartitionTheFleet) {
  for (const std::size_t readers : {1u, 2u, 7u, 13u, 64u}) {
    for (std::size_t channels = 1; channels <= readers; ++channels) {
      std::size_t sum = 0;
      for (std::size_t c = 0; c < channels; ++c)
        sum += channel_population(c, readers, channels);
      EXPECT_EQ(sum, readers) << readers << "x" << channels;
      for (std::size_t r = 0; r < readers; ++r)
        EXPECT_LT(channel_of(r, channels), channels);
    }
  }
}

TEST(ChannelSchedule, NoCoChannelConcurrencyAndFullRotation) {
  // The core invariant: per tick exactly one reader transmits per channel,
  // and over one rotation every channel member is scheduled exactly once.
  constexpr std::size_t kReaders = 13;
  constexpr std::size_t kChannels = 4;
  for (std::size_t c = 0; c < kChannels; ++c) {
    const std::size_t members = channel_population(c, kReaders, kChannels);
    std::set<std::size_t> seen;
    for (std::uint64_t tick = 1; tick <= members; ++tick) {
      const std::size_t r = scheduled_reader(c, kReaders, kChannels, tick);
      ASSERT_LT(r, kReaders);
      EXPECT_EQ(channel_of(r, kChannels), c);  // never leaves its channel
      seen.insert(r);
    }
    EXPECT_EQ(seen.size(), members);  // every member exactly once
    // The rotation wraps: tick members+1 repeats tick 1.
    EXPECT_EQ(scheduled_reader(c, kReaders, kChannels, members + 1),
              scheduled_reader(c, kReaders, kChannels, 1));
  }
}

TEST(ChannelSchedule, DegeneratesToTimeDivisionAndSpatialParallel) {
  constexpr std::size_t kReaders = 6;
  // C = 1: one shared channel, readers take strict turns (pure TDMA).
  std::set<std::size_t> tdma;
  for (std::uint64_t tick = 1; tick <= kReaders; ++tick)
    tdma.insert(scheduled_reader(0, kReaders, 1, tick));
  EXPECT_EQ(tdma.size(), kReaders);
  // C = R: every reader owns a channel and transmits every tick.
  for (std::uint64_t tick = 1; tick <= 3; ++tick)
    for (std::size_t c = 0; c < kReaders; ++c)
      EXPECT_EQ(scheduled_reader(c, kReaders, kReaders, tick), c);
}

// --- Overlap ownership ------------------------------------------------------

TEST(Ownership, ResolvesWithinReachDeterministically) {
  const auto pop = uniform(2000, 41);
  DeploymentConfig config;
  config.readers = 8;
  config.zone_overlap = 0.5;
  std::size_t rehomed = 0;
  for (const tags::Tag& tag : pop) {
    const std::size_t zone = 3;
    const std::size_t owner = owner_in_zone(tag.id(), zone, config);
    EXPECT_EQ(owner, owner_in_zone(tag.id(), zone, config));  // pure
    if (owner != zone) {
      // Rehoming is only legal to the overlapping neighbor, and only for
      // tags the overlap draw actually reaches.
      EXPECT_EQ(owner, (zone + 1) % config.readers);
      EXPECT_TRUE(tag_reaches_neighbor(tag.id(), config.zone_overlap,
                                       config.partition_seed));
      ++rehomed;
    }
  }
  // ~50% reach the neighbor, ~half of those hash to it: ~25% rehome.
  EXPECT_GT(rehomed, 300u);
  EXPECT_LT(rehomed, 700u);
}

TEST(Ownership, ZeroOverlapIsTheLegacyPartition) {
  const auto pop = uniform(300, 42);
  DeploymentConfig config;
  config.readers = 5;
  config.zone_overlap = 0.0;
  for (const tags::Tag& tag : pop) {
    EXPECT_FALSE(tag_reaches_neighbor(tag.id(), 0.0, config.partition_seed));
    for (std::size_t zone = 0; zone < config.readers; ++zone)
      EXPECT_EQ(owner_in_zone(tag.id(), zone, config), zone);
  }
}

// --- Churn schedules --------------------------------------------------------

TEST(Churn, PositionIsPureAndDepartureIsAbsorbing) {
  const auto pop = uniform(200, 43);
  DeploymentConfig config;
  config.readers = 6;
  config.churn_move_per_tick = 0.05;
  config.churn_depart_per_tick = 0.02;
  std::size_t departures = 0, moves = 0;
  for (const tags::Tag& tag : pop) {
    ChurnPosition prev = churn_position(tag.id(), 2, 0, config);
    EXPECT_EQ(prev.zone, 2u);  // tick 0: still at home
    EXPECT_FALSE(prev.departed);
    for (std::uint64_t tick = 1; tick <= 200; ++tick) {
      const ChurnPosition pos = churn_position(tag.id(), 2, tick, config);
      const ChurnPosition again = churn_position(tag.id(), 2, tick, config);
      EXPECT_EQ(pos.zone, again.zone);  // pure in (seed, id, tick)
      EXPECT_EQ(pos.moves, again.moves);
      EXPECT_GE(pos.moves, prev.moves);  // event count never rewinds
      EXPECT_LT(pos.zone, config.readers);
      if (prev.departed) {  // departure is absorbing
        EXPECT_TRUE(pos.departed);
        EXPECT_EQ(pos.departed_at, prev.departed_at);
        EXPECT_EQ(pos.moves, prev.moves);
      }
      prev = pos;
    }
    departures += prev.departed;
    moves += prev.moves;
  }
  // At these hazards over 200 ticks, nearly everything departs and most
  // tags move at least once first — the schedules demonstrably fire.
  EXPECT_GT(departures, 150u);
  EXPECT_GT(moves, 200u);
}

TEST(Churn, ZeroHazardsMeanNobodyEverMoves) {
  const auto pop = uniform(50, 44);
  DeploymentConfig config;
  config.readers = 4;
  for (const tags::Tag& tag : pop) {
    const ChurnPosition pos = churn_position(tag.id(), 1, 1u << 16, config);
    EXPECT_EQ(pos.zone, 1u);
    EXPECT_FALSE(pos.departed);
    EXPECT_EQ(pos.moves, 0u);
  }
}

// --- End-to-end accounting --------------------------------------------------

TEST(Deployment, ChurningOverlappingSweepAccountsExactly) {
  const auto pop = uniform(2000, 45);
  DeploymentConfig config;
  config.readers = 8;
  config.channels = 3;
  config.session.seed = 9;
  config.session.keep_records = true;
  config.zone_overlap = 0.3;
  config.churn_move_per_tick = 0.01;
  config.churn_depart_per_tick = 0.003;
  const DeploymentReport report = run_deployment(pop, config);

  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.delivered + report.missing_ids.size() +
                report.undelivered_ids.size(),
            2000u);
  EXPECT_EQ(report.records.size(), report.delivered);
  EXPECT_GT(report.churn_moves, 0u);
  EXPECT_GT(report.churn_departures, 0u);
  EXPECT_GE(report.handoffs, report.churn_moves);

  // Exactly-once: delivered, missing and undelivered are disjoint and
  // together cover the whole population.
  std::unordered_set<TagId, TagIdHash> seen;
  for (const sim::CollectedRecord& record : report.records)
    EXPECT_TRUE(seen.insert(record.id).second) << record.id.to_hex();
  for (const TagId& id : report.missing_ids)
    EXPECT_TRUE(seen.insert(id).second) << id.to_hex();
  for (const TagId& id : report.undelivered_ids)
    EXPECT_TRUE(seen.insert(id).second) << id.to_hex();
  for (const tags::Tag& tag : pop) EXPECT_EQ(seen.count(tag.id()), 1u);
}

TEST(Deployment, ChannelReportsAreConsistent) {
  const auto pop = uniform(1200, 46);
  DeploymentConfig config;
  config.readers = 7;
  config.channels = 3;
  const DeploymentReport report = run_deployment(pop, config);
  EXPECT_TRUE(report.verified);
  ASSERT_EQ(report.per_channel.size(), 3u);
  double busy_us = 0.0;
  std::uint64_t rounds = 0;
  for (std::size_t c = 0; c < report.per_channel.size(); ++c) {
    EXPECT_EQ(report.per_channel[c].readers, channel_population(c, 7, 3));
    EXPECT_GT(report.per_channel[c].rounds, 0u);
    busy_us += report.per_channel[c].busy_us;
    rounds += report.per_channel[c].rounds;
  }
  EXPECT_NEAR(busy_us * 1e-6, report.total_busy_s, 1e-6);
  EXPECT_EQ(rounds, report.totals.rounds);
  // Time division across co-channel readers: the makespan exceeds the
  // per-channel maximum share but never the full serialized airtime.
  EXPECT_LT(report.makespan_s, report.total_busy_s);
}

TEST(Deployment, SupervisorDeadlinesScaleWithTheRotation) {
  // 12 readers on one channel: each transmits every 12th tick. Unscaled,
  // the default degraded_after_ticks=2 would flag every reader; the
  // rotation-scaled deadlines must keep a fault-free fleet spotless.
  const auto pop = uniform(1500, 47);
  DeploymentConfig config;
  config.readers = 12;
  config.channels = 1;
  const DeploymentReport report = run_deployment(pop, config);
  EXPECT_TRUE(report.verified);
  EXPECT_TRUE(report.transitions.empty());
  for (const obs::ReaderHealth health : report.per_reader_health)
    EXPECT_EQ(health, obs::ReaderHealth::kHealthy);
  for (const std::uint64_t incarnations : report.per_reader_incarnations)
    EXPECT_EQ(incarnations, 1u);
}

TEST(Deployment, FaultsUnderChannelContentionStayExact) {
  const auto pop = uniform(900, 48);
  DeploymentConfig config;
  config.readers = 6;
  config.channels = 2;
  config.session.seed = 13;
  config.zone_overlap = 0.2;
  config.reader_faults.crash_per_tick = 0.05;
  config.reader_faults.stall_per_tick = 0.05;
  const DeploymentReport report = run_deployment(pop, config);
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.delivered + report.missing_ids.size() +
                report.undelivered_ids.size(),
            900u);
  EXPECT_GT(report.totals.reader_crashes + report.totals.reader_stalls, 0u);
  EXPECT_FALSE(report.transitions.empty());
}

// --- Shard and thread invariance --------------------------------------------

TEST(Deployment, ReportIsInvariantToShardCount) {
  const auto pop = uniform(3000, 49);
  DeploymentConfig config;
  config.readers = 14;
  config.channels = 4;
  config.session.seed = 17;
  config.zone_overlap = 0.25;
  config.churn_move_per_tick = 0.005;
  config.churn_depart_per_tick = 0.001;
  config.shards = 1;
  const std::string baseline = deployment_digest(run_deployment(pop, config));
  for (const std::size_t shards : {2u, 7u}) {
    config.shards = shards;
    EXPECT_EQ(deployment_digest(run_deployment(pop, config)), baseline)
        << "shards=" << shards;
  }
}

TEST(Deployment, PooledRunIsByteIdenticalToSerial) {
  const auto pop = uniform(2500, 50);
  DeploymentConfig config;
  config.readers = 9;
  config.channels = 3;
  config.session.seed = 19;
  config.zone_overlap = 0.2;
  config.churn_move_per_tick = 0.004;
  config.reader_faults.crash_per_tick = 0.02;
  const std::string serial = deployment_digest(run_deployment(pop, config));
  parallel::ThreadPool pool(3);
  EXPECT_EQ(deployment_digest(run_deployment(pop, config, &pool)), serial);
}

TEST(Deployment, InvalidConfigsRejected) {
  const auto pop = uniform(10, 51);
  DeploymentConfig config;
  config.readers = 0;
  EXPECT_THROW((void)run_deployment(pop, config), ContractViolation);
  config.readers = 2;
  config.zone_overlap = 1.5;
  EXPECT_THROW((void)run_deployment(pop, config), ContractViolation);
  config.zone_overlap = 0.0;
  config.churn_depart_per_tick = 1.0;
  EXPECT_THROW((void)run_deployment(pop, config), ContractViolation);
}

}  // namespace
}  // namespace rfid::core
