// Unit tests for the bit-level containers.
#include <gtest/gtest.h>

#include "common/bitvec.hpp"

namespace rfid {
namespace {

TEST(BitVec, StartsEmpty) {
  BitVec v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
}

TEST(BitVec, PushBackGrows) {
  BitVec v;
  v.push_back(true);
  v.push_back(false);
  v.push_back(true);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_TRUE(v.bit(0));
  EXPECT_FALSE(v.bit(1));
  EXPECT_TRUE(v.bit(2));
}

TEST(BitVec, StringConstructorRoundTrips) {
  const std::string pattern = "1011001110001111";
  BitVec v(pattern);
  EXPECT_EQ(v.to_string(), pattern);
}

TEST(BitVec, StringConstructorRejectsNonBinary) {
  EXPECT_THROW(BitVec("10x"), ContractViolation);
}

TEST(BitVec, AppendBitsIsMsbFirst) {
  BitVec v;
  v.append_bits(0b101, 3);
  EXPECT_EQ(v.to_string(), "101");
  v.append_bits(0b0110, 4);
  EXPECT_EQ(v.to_string(), "1010110");
}

TEST(BitVec, AppendBitsZeroWidthIsNoop) {
  BitVec v("11");
  v.append_bits(0xFFFF, 0);
  EXPECT_EQ(v.size(), 2u);
}

TEST(BitVec, ReadBitsInverseOfAppend) {
  BitVec v;
  v.append_bits(0xDEADBEEFCAFEULL, 48);
  EXPECT_EQ(v.read_bits(0, 48), 0xDEADBEEFCAFEULL);
  EXPECT_EQ(v.read_bits(8, 16), 0xADBEu);
}

TEST(BitVec, ReadBitsBoundsChecked) {
  BitVec v("1010");
  EXPECT_THROW((void)v.read_bits(2, 3), ContractViolation);
}

TEST(BitVec, CrossesWordBoundaries) {
  BitVec v;
  for (int i = 0; i < 130; ++i) v.push_back(i % 3 == 0);
  EXPECT_EQ(v.size(), 130u);
  for (int i = 0; i < 130; ++i) EXPECT_EQ(v.bit(std::size_t(i)), i % 3 == 0);
}

TEST(BitVec, AppendConcatenates) {
  BitVec a("110"), b("01");
  a.append(b);
  EXPECT_EQ(a.to_string(), "11001");
}

TEST(BitVec, EqualityIgnoresCapacity) {
  BitVec a, b;
  for (int i = 0; i < 70; ++i) a.push_back(true);
  for (int i = 0; i < 70; ++i) b.push_back(true);
  EXPECT_TRUE(a == b);
  b.push_back(false);
  EXPECT_FALSE(a == b);
}

TEST(BitVec, EqualityDifferentContent) {
  EXPECT_FALSE(BitVec("101") == BitVec("100"));
  EXPECT_FALSE(BitVec("101") == BitVec("1010"));
  EXPECT_TRUE(BitVec("101") == BitVec("101"));
}

TEST(BitReader, SequentialReads) {
  BitVec v("1011000111");
  BitReader reader(v);
  EXPECT_EQ(reader.remaining(), 10u);
  EXPECT_TRUE(reader.read_bit());
  EXPECT_EQ(reader.read_bits(3), 0b011u);
  EXPECT_EQ(reader.read_bits(6), 0b000111u);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(BitReader, OverreadThrows) {
  BitVec v("11");
  BitReader reader(v);
  (void)reader.read_bit();
  EXPECT_THROW((void)reader.read_bits(2), ContractViolation);
}

}  // namespace
}  // namespace rfid
