// Fault-injection and recovery tests.
//
// Four contracts, in order: the Gilbert–Elliott chain reproduces its
// closed-form stationary loss; churn schedules replay deterministically
// (same seed, any pool size); a recovery policy either collects every
// present tag or reports the exact undelivered set; and a zero-fault
// configuration is byte-identical to a run that never heard of the fault
// layer.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "core/polling.hpp"
#include "fault/injector.hpp"
#include "fault/recovery.hpp"
#include "obs/phase_timer.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/trial_runner.hpp"
#include "sim/report_io.hpp"

namespace rfid {
namespace {

using core::ProtocolKind;
using fault::ChurnEvent;
using fault::FaultConfig;
using fault::GilbertElliottParams;
using fault::LinkModel;

tags::TagPopulation make_population(std::size_t n, std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  return tags::TagPopulation::uniform_random(n, rng);
}

// --- Fault models -----------------------------------------------------------

TEST(GilbertElliott, ClosedFormsMatchDefinition) {
  GilbertElliottParams ge;
  ge.p_good_to_bad = 0.1;
  ge.p_bad_to_good = 0.3;
  ge.loss_good = 0.02;
  ge.loss_bad = 0.8;
  const double pi_bad = 0.1 / (0.1 + 0.3);
  EXPECT_DOUBLE_EQ(ge.stationary_bad(), pi_bad);
  EXPECT_DOUBLE_EQ(ge.stationary_loss(),
                   (1.0 - pi_bad) * 0.02 + pi_bad * 0.8);
  GilbertElliottParams frozen;
  frozen.p_good_to_bad = 0.0;
  frozen.p_bad_to_good = 0.0;
  EXPECT_DOUBLE_EQ(frozen.stationary_bad(), 0.0);
}

TEST(GilbertElliott, EmpiricalLossMatchesStationaryClosedForm) {
  FaultConfig config;
  config.link = LinkModel::kGilbertElliott;
  config.gilbert_elliott.p_good_to_bad = 0.05;
  config.gilbert_elliott.p_bad_to_good = 0.40;
  config.gilbert_elliott.loss_good = 0.05;
  config.gilbert_elliott.loss_bad = 0.75;
  fault::FaultInjector injector(config, /*seed=*/1234);

  // Pearson's test assumes independent samples, but consecutive decode
  // attempts of a burst chain are correlated (by (1 - p_gb - p_bg) per
  // step). Thin the chain: count every 16th attempt, by which point the
  // correlation has decayed to ~0.55^16 ≈ 1e-4.
  constexpr std::size_t kDraws = 400000;
  constexpr std::size_t kThin = 16;
  std::size_t counted = 0;
  std::size_t lost = 0;
  for (std::size_t i = 0; i < kDraws; ++i) {
    const bool garbled = injector.corrupt_reply();
    if (i % kThin != 0) continue;
    ++counted;
    if (garbled) ++lost;
  }

  // Chi-square of the {delivered, lost} counts against the closed-form
  // stationary loss; dof = 1, 99% critical value 6.635. The draw is
  // seeded, so this is a deterministic regression check, not a flaky
  // statistical one.
  const double p = config.gilbert_elliott.stationary_loss();
  const std::array<std::size_t, 2> observed{counted - lost, lost};
  const std::array<double, 2> expected{1.0 - p, p};
  EXPECT_LT(chi_square_expected(observed, expected), 6.635)
      << "empirical loss " << double(lost) / double(counted)
      << " vs closed form " << p;
}

TEST(GilbertElliott, LossArrivesInBursts) {
  // Burstiness signature: with sticky states, the number of 01/10
  // alternations in the loss sequence is far below the i.i.d. expectation
  // 2 p (1-p) per adjacent pair.
  FaultConfig config;
  config.link = LinkModel::kGilbertElliott;
  config.gilbert_elliott.p_good_to_bad = 0.02;
  config.gilbert_elliott.p_bad_to_good = 0.10;
  config.gilbert_elliott.loss_good = 0.0;
  config.gilbert_elliott.loss_bad = 1.0;
  fault::FaultInjector injector(config, /*seed=*/77);

  constexpr std::size_t kDraws = 100000;
  std::size_t alternations = 0;
  std::size_t lost = 0;
  bool prev = false;
  for (std::size_t i = 0; i < kDraws; ++i) {
    const bool now = injector.corrupt_reply();
    if (now) ++lost;
    if (i > 0 && now != prev) ++alternations;
    prev = now;
  }
  const double p = double(lost) / kDraws;
  const double iid_expected = 2.0 * p * (1.0 - p) * (kDraws - 1);
  EXPECT_LT(double(alternations), 0.5 * iid_expected);
}

TEST(Churn, FirstArrivalStartsAbsentAndEventsApplyInRoundOrder) {
  const auto pop = make_population(4, 1);
  FaultConfig config;
  // Listed out of order on purpose: the injector sorts by round (stable).
  config.churn.push_back({4, pop[0].id(), ChurnEvent::Kind::kArrive});
  config.churn.push_back({2, pop[0].id(), ChurnEvent::Kind::kDepart});
  config.churn.push_back({3, pop[1].id(), ChurnEvent::Kind::kArrive});
  fault::FaultInjector injector(config, /*seed=*/1);

  // pop[0]'s first event (round 2) is a departure: starts present.
  // pop[1]'s first event (round 3) is an arrival: starts absent.
  EXPECT_TRUE(injector.present(pop[0].id()));
  EXPECT_FALSE(injector.present(pop[1].id()));
  EXPECT_TRUE(injector.present(pop[2].id()));

  injector.advance_to_round(2);
  EXPECT_FALSE(injector.present(pop[0].id()));
  injector.advance_to_round(3);
  EXPECT_TRUE(injector.present(pop[1].id()));
  injector.advance_to_round(4);
  EXPECT_TRUE(injector.present(pop[0].id()));
}

TEST(Recovery, TrackerEnforcesBudget) {
  fault::RecoveryConfig config;
  config.enabled = true;
  config.retry_budget = 2;
  fault::RecoveryCoordinator tracker(config);
  const TagId id = make_population(1, 9)[0].id();
  EXPECT_TRUE(tracker.take_attempt(id));
  EXPECT_TRUE(tracker.take_attempt(id));
  EXPECT_FALSE(tracker.take_attempt(id));
  EXPECT_TRUE(tracker.exhausted(id));
  EXPECT_EQ(tracker.attempts(id), 2u);
}

TEST(Recovery, NestedScopesViolateContract) {
  // Phase charging assumes at most one recovery scope is open: a nested
  // scope would re-enter recovery_phase_begin() and let the inner dtor
  // silently end the outer phase, mischarging airtime. The coordinator
  // rejects the second scope up front.
  const auto pop = make_population(4, 5);
  sim::SessionConfig session_config;
  session_config.recovery.enabled = true;
  sim::Session session(pop, session_config);
  fault::RecoveryCoordinator coordinator(session_config.recovery);
  fault::RecoveryCoordinator::Scope outer(coordinator, session);
  EXPECT_THROW(fault::RecoveryCoordinator::Scope(coordinator, session),
               ContractViolation);
}

TEST(Recovery, MopUpPassesMustBePositiveWhenEnabled) {
  const auto pop = make_population(8, 2);
  sim::SessionConfig config;
  config.recovery.enabled = true;
  config.recovery.mop_up_passes = 0;
  EXPECT_THROW(sim::Session(pop, config), ContractViolation);
}

// --- Determinism ------------------------------------------------------------

TEST(FaultDeterminism, ChurnScheduleReplaysByteIdentically) {
  const auto pop = make_population(400, 3);
  sim::SessionConfig config;
  config.seed = 11;
  config.keep_trace = true;
  config.recovery.enabled = true;
  config.recovery.retry_budget = 6;
  config.fault.link = LinkModel::kGilbertElliott;
  for (std::size_t i = 0; i < pop.size(); i += 17) {
    config.fault.churn.push_back({2, pop[i].id(), ChurnEvent::Kind::kDepart});
    config.fault.churn.push_back({5, pop[i].id(), ChurnEvent::Kind::kArrive});
  }
  const auto protocol = protocols::make_protocol(ProtocolKind::kHpp);
  const auto a = protocol->run(pop, config);
  const auto b = protocol->run(pop, config);
  EXPECT_EQ(sim::to_json(a, {true, true, 2}), sim::to_json(b, {true, true, 2}));
  EXPECT_TRUE(a.fault_layer);
}

TEST(FaultDeterminism, SerialAndPooledTrialsAgreeUnderFaults) {
  parallel::TrialPlan plan;
  plan.trials = 12;
  plan.master_seed = 21;
  plan.session.fault.link = LinkModel::kGilbertElliott;
  plan.session.recovery.enabled = true;
  plan.session.recovery.retry_budget = 10;
  const auto protocol = protocols::make_protocol(ProtocolKind::kTpp);
  const auto factory = parallel::uniform_population(300);

  const auto serial = parallel::run_trials(*protocol, factory, plan, nullptr);
  parallel::ThreadPool pool(4);
  const auto pooled = parallel::run_trials(*protocol, factory, plan, &pool);

  EXPECT_EQ(serial.totals.polls, pooled.totals.polls);
  EXPECT_EQ(serial.totals.corrupted, pooled.totals.corrupted);
  EXPECT_EQ(serial.totals.retries, pooled.totals.retries);
  EXPECT_EQ(serial.totals.undelivered, pooled.totals.undelivered);
  EXPECT_DOUBLE_EQ(serial.totals.time_us, pooled.totals.time_us);
  ASSERT_EQ(serial.outcomes.size(), pooled.outcomes.size());
  for (std::size_t i = 0; i < serial.outcomes.size(); ++i)
    EXPECT_DOUBLE_EQ(serial.outcomes[i].exec_time_s,
                     pooled.outcomes[i].exec_time_s);
}

// --- Recovery semantics -----------------------------------------------------

struct RecoveryCase final {
  ProtocolKind kind;
};

class RecoverySweep : public ::testing::TestWithParam<RecoveryCase> {};

TEST_P(RecoverySweep, CompleteCollectionUnderBurstLossWithRecovery) {
  const auto pop = make_population(600, 5);
  sim::SessionConfig config;
  config.seed = 31;
  config.fault.link = LinkModel::kGilbertElliott;
  config.recovery.enabled = true;
  config.recovery.retry_budget = 50;
  const auto result =
      protocols::make_protocol(GetParam().kind)->run(pop, config);
  // Loss < 1 and a generous budget: every tag must eventually be read.
  const auto verify = sim::verify_complete_collection(pop, result);
  EXPECT_TRUE(verify.ok) << verify.message;
  EXPECT_EQ(result.records.size(), pop.size());
  EXPECT_TRUE(result.undelivered_ids.empty());
  EXPECT_GT(result.metrics.corrupted, 0u);
  // Mop-up re-polls happened and their airtime landed in the recovery
  // phase; the phase split still partitions the clock exactly.
  EXPECT_GT(result.metrics.retries, 0u);
  EXPECT_GT(result.metrics.phases.get(obs::Phase::kRecovery), 0.0);
  double phase_sum = 0.0;
  for (std::size_t p = 0; p < obs::kPhaseCount; ++p)
    phase_sum += result.metrics.phases.get(static_cast<obs::Phase>(p));
  EXPECT_NEAR(phase_sum, result.metrics.time_us,
              1e-9 * result.metrics.time_us);
}

TEST_P(RecoverySweep, BudgetExhaustionReportsExactUndeliveredSet) {
  const auto pop = make_population(500, 6);
  sim::SessionConfig config;
  config.seed = 41;
  config.recovery.enabled = true;
  config.recovery.retry_budget = 4;
  // Every 25th tag departs before the first round and never returns: its
  // budget must run out and it must be reported undelivered — exactly once,
  // and nothing else may be.
  std::vector<TagId> departed;
  for (std::size_t i = 0; i < pop.size(); i += 25) {
    departed.push_back(pop[i].id());
    config.fault.churn.push_back({1, pop[i].id(), ChurnEvent::Kind::kDepart});
  }
  const auto result =
      protocols::make_protocol(GetParam().kind)->run(pop, config);

  const auto verify = sim::verify_complete_collection(pop, result);
  EXPECT_TRUE(verify.ok) << verify.message;
  EXPECT_EQ(result.records.size(), pop.size() - departed.size());
  EXPECT_EQ(result.metrics.undelivered, departed.size());
  auto undelivered = result.undelivered_ids;
  std::sort(undelivered.begin(), undelivered.end());
  std::sort(departed.begin(), departed.end());
  EXPECT_EQ(undelivered, departed);
  // Each abandoned tag consumed its whole budget, no more.
  EXPECT_TRUE(result.missing_ids.empty());
}

INSTANTIATE_TEST_SUITE_P(Protocols, RecoverySweep,
                         ::testing::Values(RecoveryCase{ProtocolKind::kHpp},
                                           RecoveryCase{ProtocolKind::kEhpp},
                                           RecoveryCase{ProtocolKind::kTpp}),
                         [](const auto& param_info) {
                           return std::string(
                               protocols::to_string(param_info.param.kind));
                         });

TEST(Recovery, ChurnedBackTagIsCollectedNotUndelivered) {
  const auto pop = make_population(300, 7);
  sim::SessionConfig config;
  config.seed = 51;
  config.recovery.enabled = true;
  config.recovery.retry_budget = 200;
  // One tag leaves before round 1 and returns at round 3: with a budget
  // that survives the gap, it must end up collected like everyone else.
  config.fault.churn.push_back({1, pop[0].id(), ChurnEvent::Kind::kDepart});
  config.fault.churn.push_back({3, pop[0].id(), ChurnEvent::Kind::kArrive});
  const auto result =
      protocols::make_protocol(ProtocolKind::kHpp)->run(pop, config);
  const auto verify = sim::verify_complete_collection(pop, result);
  EXPECT_TRUE(verify.ok) << verify.message;
  EXPECT_EQ(result.records.size(), pop.size());
  EXPECT_TRUE(result.undelivered_ids.empty());
  EXPECT_GT(result.metrics.retries, 0u);
}

TEST(Recovery, BernoulliLinkModelAlsoRecovers) {
  const auto pop = make_population(400, 8);
  sim::SessionConfig config;
  config.seed = 61;
  config.fault.link = LinkModel::kBernoulli;
  config.fault.bernoulli_loss = 0.3;
  config.recovery.enabled = true;
  config.recovery.retry_budget = 60;
  const auto result =
      protocols::make_protocol(ProtocolKind::kEhpp)->run(pop, config);
  const auto verify = sim::verify_complete_collection(pop, result);
  EXPECT_TRUE(verify.ok) << verify.message;
  EXPECT_EQ(result.records.size(), pop.size());
}

// --- Zero-fault byte-identity ----------------------------------------------

TEST(ZeroFault, ExplicitlyDisabledPlanIsByteIdenticalToDefault) {
  const auto pop = make_population(500, 9);
  sim::SessionConfig vanilla;
  vanilla.seed = 71;
  vanilla.keep_trace = true;
  sim::SessionConfig spelled_out = vanilla;
  spelled_out.fault = FaultConfig{};       // kNone link, empty churn
  spelled_out.recovery = fault::RecoveryConfig{};  // disabled
  for (const ProtocolKind kind :
       {ProtocolKind::kHpp, ProtocolKind::kEhpp, ProtocolKind::kTpp}) {
    const auto protocol = protocols::make_protocol(kind);
    const auto a = protocol->run(pop, vanilla);
    const auto b = protocol->run(pop, spelled_out);
    EXPECT_EQ(sim::to_json(a, {true, true, 2}),
              sim::to_json(b, {true, true, 2}))
        << protocols::to_string(kind);
    EXPECT_FALSE(a.fault_layer);
  }
}

TEST(ZeroFault, ReportOmitsFaultFieldsEntirely) {
  const auto pop = make_population(200, 10);
  sim::SessionConfig config;
  config.seed = 81;
  config.keep_trace = true;
  const auto result =
      protocols::make_protocol(ProtocolKind::kTpp)->run(pop, config);
  const std::string json = sim::to_json(result, {false, true, 2});
  // The fault-layer keys must not leak into clean-channel reports: their
  // absence is what keeps pre-fault-layer consumers byte-compatible.
  EXPECT_EQ(json.find("retries"), std::string::npos);
  EXPECT_EQ(json.find("undelivered"), std::string::npos);
  EXPECT_EQ(json.find("recovery"), std::string::npos);
}

TEST(ZeroFault, FaultyRunReportsFaultFields) {
  const auto pop = make_population(200, 11);
  sim::SessionConfig config;
  config.seed = 91;
  config.fault.link = LinkModel::kGilbertElliott;
  config.recovery.enabled = true;
  const auto result =
      protocols::make_protocol(ProtocolKind::kTpp)->run(pop, config);
  const std::string json = sim::to_json(result);
  EXPECT_NE(json.find("\"retries\""), std::string::npos);
  EXPECT_NE(json.find("\"undelivered\""), std::string::npos);
  EXPECT_NE(json.find("\"recovery\""), std::string::npos);
  EXPECT_NE(json.find("\"undelivered_ids\""), std::string::npos);
}

TEST(ZeroFault, LegacyNoiseKnobStaysOnSessionStream) {
  // The legacy reply_error_rate draws from the session RNG exactly as
  // before; pairing it with a disabled structured plan must not perturb it.
  const auto pop = make_population(300, 12);
  sim::SessionConfig noisy;
  noisy.seed = 101;
  noisy.reply_error_rate = 0.2;
  sim::SessionConfig noisy_spelled = noisy;
  noisy_spelled.fault = FaultConfig{};
  const auto protocol = protocols::make_protocol(ProtocolKind::kHpp);
  const auto a = protocol->run(pop, noisy);
  const auto b = protocol->run(pop, noisy_spelled);
  EXPECT_EQ(sim::to_json(a), sim::to_json(b));
  EXPECT_GT(a.metrics.corrupted, 0u);
}

}  // namespace
}  // namespace rfid
