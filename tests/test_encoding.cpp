// Tests for the C1G2 bit encodings and link-rate arithmetic.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "phy/encoding.hpp"

namespace rfid::phy {
namespace {

TEST(Fm0, TwoLevelsPerBit) {
  EXPECT_EQ(fm0_encode(BitVec("1011")).size(), 8u);
  EXPECT_TRUE(fm0_encode(BitVec("")).empty());
}

TEST(Fm0, BoundaryAlwaysInverts) {
  const auto levels = fm0_encode(BitVec("010011101"));
  for (std::size_t symbol = 1; symbol * 2 < levels.size(); ++symbol)
    EXPECT_NE(levels[symbol * 2], levels[symbol * 2 - 1]) << symbol;
}

TEST(Fm0, ZeroInvertsMidSymbolOneDoesNot) {
  const auto levels = fm0_encode(BitVec("01"));
  EXPECT_NE(levels[0], levels[1]);  // data-0: mid-symbol inversion
  EXPECT_EQ(levels[2], levels[3]);  // data-1: constant within symbol
}

TEST(Fm0, RoundTripFuzz) {
  Xoshiro256ss rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    BitVec bits;
    const std::size_t len = 1 + rng.below(64);
    for (std::size_t i = 0; i < len; ++i) bits.push_back(rng.bernoulli(0.5));
    for (const bool start : {false, true}) {
      const auto decoded = fm0_decode(fm0_encode(bits, start));
      ASSERT_TRUE(decoded.has_value());
      EXPECT_TRUE(*decoded == bits);
    }
  }
}

TEST(Fm0, DecodeRejectsViolations) {
  EXPECT_FALSE(fm0_decode({true}).has_value());  // odd length
  // Missing boundary inversion: symbol ends high, next starts high.
  EXPECT_FALSE(fm0_decode({false, true, true, true}).has_value());
}

TEST(Miller, ChipCountMatchesM) {
  const BitVec bits("1010");
  for (const unsigned m : {2u, 4u, 8u})
    EXPECT_EQ(miller_encode(bits, m).size(), bits.size() * 2 * m) << m;
}

TEST(Miller, SubcarrierTogglesEveryChip) {
  // Within one half-symbol the subcarrier alternates chips; transitions
  // therefore dominate the waveform (at least one per chip pair).
  const auto levels = miller_encode(BitVec("0000"), 4);
  std::size_t transitions = 0;
  for (std::size_t i = 1; i < levels.size(); ++i)
    transitions += levels[i] != levels[i - 1];
  EXPECT_GE(transitions, levels.size() / 2);
}

TEST(Miller, RoundTripFuzz) {
  Xoshiro256ss rng(2);
  for (const unsigned m : {2u, 4u, 8u}) {
    for (int trial = 0; trial < 50; ++trial) {
      BitVec bits;
      const std::size_t len = 1 + rng.below(48);
      for (std::size_t i = 0; i < len; ++i)
        bits.push_back(rng.bernoulli(0.5));
      for (const bool start : {false, true}) {
        const auto decoded = miller_decode(miller_encode(bits, m, start), m);
        ASSERT_TRUE(decoded.has_value()) << m;
        EXPECT_TRUE(*decoded == bits) << m;
      }
    }
  }
}

TEST(Miller, DecodeRejectsCorruptedSubcarrier) {
  auto levels = miller_encode(BitVec("1100"), 4);
  levels[5] = !levels[5];  // break one chip
  EXPECT_FALSE(miller_decode(levels, 4).has_value());
  // Wrong length is also rejected.
  levels.push_back(true);
  EXPECT_FALSE(miller_decode(levels, 4).has_value());
}

TEST(Miller, RejectsInvalidM) {
  EXPECT_THROW((void)miller_encode(BitVec("1"), 3), ContractViolation);
}

TEST(LinkRates, PaperForwardRateFromPie) {
  // Tari 25 us with 2-Tari data-1: 37.5 us/bit ~ 26.7 kbps, the paper's
  // reader rate (it quotes the reciprocal rounded to 37.45).
  EXPECT_DOUBLE_EQ(pie_avg_us_per_bit(25.0), 37.5);
  EXPECT_NEAR(1000.0 / pie_avg_us_per_bit(25.0), 26.7, 0.1);
  // Fastest standard setting: Tari 6.25 us, 1.5-Tari data-1 -> 128 kbps.
  EXPECT_NEAR(1000.0 / pie_avg_us_per_bit(6.25, 1.5), 128.0, 0.5);
}

TEST(LinkRates, PaperReturnRateFromFm0) {
  // BLF 40 kHz FM0: 25 us/bit = 40 kbps, the paper's tag rate. FM0 spans
  // 40..640 kbps across the standard's BLF range.
  EXPECT_DOUBLE_EQ(backscatter_us_per_bit(40.0), 25.0);
  EXPECT_DOUBLE_EQ(backscatter_us_per_bit(640.0), 1.5625);
}

TEST(LinkRates, MillerDividesRate) {
  EXPECT_DOUBLE_EQ(backscatter_us_per_bit(320.0, 8),
                   8 * backscatter_us_per_bit(320.0, 1));
}

TEST(LinkRates, LinkTimingRecoversPaperSetting) {
  const C1G2Timing timing = link_timing(25.0, 40.0);
  EXPECT_NEAR(timing.reader_us_per_bit, 37.45, 0.1);
  EXPECT_DOUBLE_EQ(timing.tag_us_per_bit, 25.0);
  // The derived model yields the paper's per-poll cost within rounding.
  const C1G2Timing paper;  // defaults = paper constants
  EXPECT_NEAR(timing.poll_us(3, 1), paper.poll_us(3, 1), 1.0);
}

}  // namespace
}  // namespace rfid::phy
