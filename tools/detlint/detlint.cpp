#include "detlint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace detlint {

namespace {

constexpr std::string_view kRuleWallClock = "wall-clock";
constexpr std::string_view kRuleBannedRng = "banned-rng";
constexpr std::string_view kRuleUnorderedIteration = "unordered-iteration";
constexpr std::string_view kRuleUnnamedRngStream = "unnamed-rng-stream";
constexpr std::string_view kRuleBadPragma = "bad-pragma";

[[nodiscard]] bool is_word(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `text[pos..pos+word.size())` equals `word` and both sides are
/// word boundaries.
[[nodiscard]] bool word_at(std::string_view text, std::size_t pos,
                           std::string_view word) {
  if (pos + word.size() > text.size()) return false;
  if (text.substr(pos, word.size()) != word) return false;
  if (pos > 0 && is_word(text[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  return end == text.size() || !is_word(text[end]);
}

/// First word-boundary occurrence of `word` in `text` at or after `from`,
/// or npos.
[[nodiscard]] std::size_t find_word(std::string_view text,
                                    std::string_view word,
                                    std::size_t from = 0) {
  for (std::size_t pos = text.find(word, from); pos != std::string_view::npos;
       pos = text.find(word, pos + 1)) {
    if (word_at(text, pos, word)) return pos;
  }
  return std::string_view::npos;
}

[[nodiscard]] std::size_t skip_spaces(std::string_view text,
                                      std::size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0)
    ++pos;
  return pos;
}

/// Position of the last non-space character before `pos`, or npos.
[[nodiscard]] std::size_t rskip_spaces(std::string_view text,
                                       std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (std::isspace(static_cast<unsigned char>(text[pos])) == 0) return pos;
  }
  return std::string_view::npos;
}

/// One physical source line, split into the code part (comments, string
/// and character literals blanked with spaces; preprocessor lines fully
/// blanked) and the comment text (for pragma parsing).
struct SplitLine final {
  std::string code;
  std::string comment;
};

/// Comment/string-aware splitter. Tracks block comments and raw string
/// literals across lines; ordinary string/char literals never span lines.
class LineSplitter final {
 public:
  [[nodiscard]] SplitLine split(std::string_view line) {
    SplitLine out;
    out.code.assign(line.size(), ' ');
    std::size_t i = 0;

    // A preprocessor directive has no lintable code; its comment part can
    // still carry a pragma, so comments are extracted as usual.
    if (!in_block_comment_ && !in_raw_string_) {
      const std::size_t first = skip_spaces(line, 0);
      if (first < line.size() && line[first] == '#') {
        // Look for a trailing // comment (block comments on directive
        // lines are rare enough to ignore).
        const std::size_t slash = line.find("//", first);
        if (slash != std::string_view::npos)
          out.comment.assign(line.substr(slash + 2));
        return out;
      }
    }

    while (i < line.size()) {
      if (in_block_comment_) {
        const std::size_t end = line.find("*/", i);
        if (end == std::string_view::npos) {
          out.comment += line.substr(i);
          return out;
        }
        out.comment += line.substr(i, end - i);
        in_block_comment_ = false;
        i = end + 2;
        continue;
      }
      if (in_raw_string_) {
        const std::string closer = ")" + raw_delimiter_ + "\"";
        const std::size_t end = line.find(closer, i);
        if (end == std::string_view::npos) return out;
        in_raw_string_ = false;
        i = end + closer.size();
        continue;
      }
      const char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
        out.comment += line.substr(i + 2);
        return out;
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block_comment_ = true;
        i += 2;
        continue;
      }
      if (c == 'R' && i + 1 < line.size() && line[i + 1] == '"' &&
          (i == 0 || !is_word(line[i - 1]))) {
        const std::size_t open = line.find('(', i + 2);
        if (open != std::string_view::npos) {
          raw_delimiter_.assign(line.substr(i + 2, open - (i + 2)));
          in_raw_string_ = true;
          i = open + 1;
          continue;
        }
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            i += 2;
            continue;
          }
          if (line[i] == quote) {
            ++i;
            break;
          }
          ++i;
        }
        continue;
      }
      out.code[i] = c;
      ++i;
    }
    return out;
  }

 private:
  bool in_block_comment_ = false;
  bool in_raw_string_ = false;
  std::string raw_delimiter_;
};

/// An allow pragma parsed out of a line's comment text.
struct Pragma final {
  std::string rule;
  bool has_reason = false;
  bool well_formed = false;
};

/// Parses `// detlint: allow(<rule>) — reason` from comment text. Returns
/// pragmas in order of appearance; `well_formed` is false when the
/// `allow(...)` shape itself is broken.
[[nodiscard]] std::vector<Pragma> parse_pragmas(std::string_view comment) {
  std::vector<Pragma> pragmas;
  for (std::size_t pos = comment.find("detlint:");
       pos != std::string_view::npos;
       pos = comment.find("detlint:", pos + 1)) {
    Pragma pragma;
    std::size_t i = skip_spaces(comment, pos + std::string_view("detlint:").size());
    if (!word_at(comment, i, "allow")) {
      pragmas.push_back(pragma);  // malformed: not an allow(...)
      continue;
    }
    i = skip_spaces(comment, i + 5);
    if (i >= comment.size() || comment[i] != '(') {
      pragmas.push_back(pragma);
      continue;
    }
    const std::size_t close = comment.find(')', i);
    if (close == std::string_view::npos) {
      pragmas.push_back(pragma);
      continue;
    }
    pragma.well_formed = true;
    pragma.rule.assign(comment.substr(i + 1, close - i - 1));
    // Trim the rule id.
    while (!pragma.rule.empty() && pragma.rule.front() == ' ')
      pragma.rule.erase(pragma.rule.begin());
    while (!pragma.rule.empty() && pragma.rule.back() == ' ')
      pragma.rule.pop_back();
    // A reason is any word character after the closing paren (separators
    // like "—" / "-" / ":" alone do not count).
    for (std::size_t r = close + 1; r < comment.size(); ++r) {
      if (is_word(comment[r])) {
        pragma.has_reason = true;
        break;
      }
    }
    pragmas.push_back(std::move(pragma));
  }
  return pragmas;
}

/// Names declared with an unordered container type in this file, found by
/// bracket-matching `unordered_map<...>` / `unordered_set<...>` and
/// reading the declarator that follows. Function declarations (identifier
/// followed by `(`) are skipped: a factory *returning* a hash container is
/// not an iteration hazard at its declaration site.
[[nodiscard]] std::vector<std::string> unordered_names(
    std::string_view code) {
  std::vector<std::string> names;
  for (const std::string_view container :
       {std::string_view("unordered_map"), std::string_view("unordered_set"),
        std::string_view("unordered_multimap"),
        std::string_view("unordered_multiset")}) {
    for (std::size_t pos = find_word(code, container);
         pos != std::string_view::npos;
         pos = find_word(code, container, pos + 1)) {
      std::size_t i = skip_spaces(code, pos + container.size());
      if (i >= code.size() || code[i] != '<') continue;
      int depth = 0;
      while (i < code.size()) {
        if (code[i] == '<') ++depth;
        if (code[i] == '>') {
          --depth;
          if (depth == 0) break;
        }
        ++i;
      }
      if (i >= code.size()) continue;
      ++i;  // past the closing '>'
      // Skip reference/pointer declarators and whitespace.
      i = skip_spaces(code, i);
      while (i < code.size() && (code[i] == '&' || code[i] == '*'))
        i = skip_spaces(code, i + 1);
      const std::size_t begin = i;
      while (i < code.size() && is_word(code[i])) ++i;
      if (i == begin) continue;  // temporary / using-alias / return type
      const std::size_t next = skip_spaces(code, i);
      if (next < code.size() && code[next] == '(') continue;  // function
      names.emplace_back(code.substr(begin, i - begin));
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

void add_finding(std::vector<Finding>& findings, const std::string& file,
                 std::size_t line, std::string_view rule,
                 std::string message) {
  findings.push_back(
      Finding{file, line, std::string(rule), std::move(message)});
}

/// wall-clock: any wall-time source. The simulated clock
/// (sim::Metrics::time_us) is the only clock results may depend on.
void check_wall_clock(std::vector<Finding>& findings, const std::string& file,
                      std::size_t line_no, std::string_view code) {
  for (const std::string_view token :
       {std::string_view("system_clock"), std::string_view("gettimeofday"),
        std::string_view("localtime"), std::string_view("strftime")}) {
    if (find_word(code, token) != std::string_view::npos)
      add_finding(findings, file, line_no, kRuleWallClock,
                  "wall-clock source '" + std::string(token) +
                      "' in simulator code; results must depend only on "
                      "the simulated clock");
  }
  // time(nullptr) / time(NULL) / time(0)
  for (std::size_t pos = find_word(code, "time");
       pos != std::string_view::npos; pos = find_word(code, "time", pos + 1)) {
    std::size_t i = skip_spaces(code, pos + 4);
    if (i >= code.size() || code[i] != '(') continue;
    i = skip_spaces(code, i + 1);
    for (const std::string_view arg :
         {std::string_view("nullptr"), std::string_view("NULL"),
          std::string_view("0")}) {
      if (word_at(code, i, arg) &&
          skip_spaces(code, i + arg.size()) < code.size() &&
          code[skip_spaces(code, i + arg.size())] == ')') {
        add_finding(findings, file, line_no, kRuleWallClock,
                    "wall-clock call 'time(" + std::string(arg) +
                        ")' in simulator code");
        break;
      }
    }
  }
}

/// banned-rng: randomness not drawn from a seeded Xoshiro256ss stream.
void check_banned_rng(std::vector<Finding>& findings, const std::string& file,
                      std::size_t line_no, std::string_view code) {
  if (find_word(code, "random_device") != std::string_view::npos)
    add_finding(findings, file, line_no, kRuleBannedRng,
                "std::random_device is nondeterministic; seed a "
                "Xoshiro256ss stream instead");
  if (find_word(code, "srand") != std::string_view::npos)
    add_finding(findings, file, line_no, kRuleBannedRng,
                "srand() seeds hidden global state; use a Xoshiro256ss "
                "stream");
  for (std::size_t pos = find_word(code, "rand");
       pos != std::string_view::npos; pos = find_word(code, "rand", pos + 1)) {
    const std::size_t i = skip_spaces(code, pos + 4);
    if (i < code.size() && code[i] == '(')
      add_finding(findings, file, line_no, kRuleBannedRng,
                  "rand() draws from hidden global state; use a "
                  "Xoshiro256ss stream");
  }
}

/// unordered-iteration: walking a hash container declared in this file.
void check_unordered_iteration(std::vector<Finding>& findings,
                               const std::string& file, std::size_t line_no,
                               std::string_view code,
                               const std::vector<std::string>& names) {
  for (const std::string& name : names) {
    for (std::size_t pos = find_word(code, name);
         pos != std::string_view::npos;
         pos = find_word(code, name, pos + 1)) {
      // Range-for: `for (... : name)` — the name is preceded by a lone
      // ':' (not '::').
      const std::size_t before = rskip_spaces(code, pos);
      const bool range_for = before != std::string_view::npos &&
                             code[before] == ':' &&
                             (before == 0 || code[before - 1] != ':');
      // Iterator walk: `name.begin()` and friends.
      std::size_t after = skip_spaces(code, pos + name.size());
      bool begin_call = false;
      if (after < code.size() && code[after] == '.') {
        after = skip_spaces(code, after + 1);
        for (const std::string_view it :
             {std::string_view("begin"), std::string_view("cbegin"),
              std::string_view("rbegin"), std::string_view("crbegin")}) {
          if (word_at(code, after, it)) begin_call = true;
        }
      }
      if (range_for || begin_call)
        add_finding(findings, file, line_no, kRuleUnorderedIteration,
                    "iteration over unordered container '" + name +
                        "': hash order is implementation-defined; use an "
                        "ordered container or sort first");
    }
  }
}

/// unnamed-rng-stream: a draw through a handle named bare `rng`/`rng_`.
void check_unnamed_rng_stream(std::vector<Finding>& findings,
                              const std::string& file, std::size_t line_no,
                              std::string_view code) {
  for (const std::string_view name :
       {std::string_view("rng"), std::string_view("rng_")}) {
    for (std::size_t pos = find_word(code, name);
         pos != std::string_view::npos;
         pos = find_word(code, name, pos + 1)) {
      const std::size_t after = skip_spaces(code, pos + name.size());
      if (after < code.size() &&
          (code[after] == '.' || code[after] == '(' ||
           (code[after] == '-' && after + 1 < code.size() &&
            code[after + 1] == '>'))) {
        add_finding(findings, file, line_no, kRuleUnnamedRngStream,
                    "RNG handle named bare '" + std::string(name) +
                        "': draws must go through a named stream "
                        "(protocol_rng, fault_rng_, id_rng, ...) so "
                        "streams cannot cross");
      }
    }
  }
}

}  // namespace

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> kIds = {
      std::string(kRuleWallClock), std::string(kRuleBannedRng),
      std::string(kRuleUnorderedIteration),
      std::string(kRuleUnnamedRngStream), std::string(kRuleBadPragma)};
  return kIds;
}

std::vector<Finding> lint_source(const std::string& file,
                                 std::string_view content) {
  // Pass 1: split every line into code and comment, collect pragmas.
  std::vector<SplitLine> lines;
  LineSplitter splitter;
  {
    std::size_t start = 0;
    while (start <= content.size()) {
      const std::size_t end = content.find('\n', start);
      const std::string_view line =
          content.substr(start, end == std::string_view::npos
                                    ? std::string_view::npos
                                    : end - start);
      lines.push_back(splitter.split(line));
      if (end == std::string_view::npos) break;
      start = end + 1;
    }
  }

  std::vector<Finding> findings;

  // suppressed[i] holds the rule ids allowed on line i+1.
  std::vector<std::vector<std::string>> suppressed(lines.size());
  const auto trimmed_empty = [](const std::string& s) {
    return std::all_of(s.begin(), s.end(), [](char c) {
      return std::isspace(static_cast<unsigned char>(c)) != 0;
    });
  };
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (const Pragma& pragma : parse_pragmas(lines[i].comment)) {
      if (!pragma.well_formed) {
        add_finding(findings, file, i + 1, kRuleBadPragma,
                    "malformed detlint pragma; expected "
                    "'detlint: allow(<rule>) — reason'");
        continue;
      }
      const auto& ids = rule_ids();
      if (std::find(ids.begin(), ids.end(), pragma.rule) == ids.end()) {
        add_finding(findings, file, i + 1, kRuleBadPragma,
                    "unknown rule '" + pragma.rule + "' in detlint pragma");
        continue;
      }
      if (!pragma.has_reason) {
        add_finding(findings, file, i + 1, kRuleBadPragma,
                    "detlint pragma for '" + pragma.rule +
                        "' has no reason; write "
                        "'detlint: allow(" +
                        pragma.rule + ") — why'");
        continue;
      }
      // Inline pragma suppresses its own line; a standalone comment line
      // suppresses the next line that carries code.
      std::size_t target = i;
      if (trimmed_empty(lines[i].code)) {
        target = i + 1;
        while (target < lines.size() && trimmed_empty(lines[target].code))
          ++target;
      }
      if (target < lines.size()) suppressed[target].push_back(pragma.rule);
    }
  }

  // Pass 2: declarations, then per-line rules.
  std::string all_code;
  for (const SplitLine& line : lines) {
    all_code += line.code;
    all_code += '\n';
  }
  const std::vector<std::string> names = unordered_names(all_code);

  std::vector<Finding> raw;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string_view code = lines[i].code;
    check_wall_clock(raw, file, i + 1, code);
    check_banned_rng(raw, file, i + 1, code);
    check_unordered_iteration(raw, file, i + 1, code, names);
    check_unnamed_rng_stream(raw, file, i + 1, code);
  }
  for (Finding& finding : raw) {
    const auto& allowed = suppressed[finding.line - 1];
    if (std::find(allowed.begin(), allowed.end(), finding.rule) !=
        allowed.end())
      continue;
    findings.push_back(std::move(finding));
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::vector<Finding> lint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {Finding{path, 0, "io-error", "cannot read file"}};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return lint_source(path, buffer.str());
}

std::vector<std::string> collect_sources(const std::string& root) {
  std::vector<std::string> files;
  namespace fs = std::filesystem;
  if (!fs::exists(root)) return files;
  for (const fs::directory_entry& entry :
       fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc")
      files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string to_string(const Finding& finding) {
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         finding.rule + "] " + finding.message;
}

}  // namespace detlint
