// detlint CLI.
//
//   detlint [--root <repo-root>] [files...]
//
// With no file arguments, lints every .hpp/.cpp under <root>/src (the
// simulator sources; tests, bench, tools and examples are out of scope —
// they may stamp wall-clock manifests). With explicit file arguments it
// lints exactly those files, which is how the fixture tests drive it.
// Exit status: 0 when clean, 1 when any finding, 2 on usage error.
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "detlint.hpp"

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "detlint: --root needs a directory\n";
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--list-rules") {
      for (const std::string& rule : detlint::rule_ids())
        std::cout << rule << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: detlint [--root <repo-root>] [files...]\n"
                   "       detlint --list-rules\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "detlint: unknown option " << arg << "\n";
      return 2;
    } else {
      files.push_back(arg);
    }
  }

  if (files.empty()) {
    files = detlint::collect_sources(root + "/src");
    if (files.empty()) {
      std::cerr << "detlint: no sources under " << root << "/src\n";
      return 2;
    }
  }

  std::size_t findings = 0;
  for (const std::string& file : files) {
    for (const detlint::Finding& finding : detlint::lint_file(file)) {
      std::cout << detlint::to_string(finding) << "\n";
      ++findings;
    }
  }
  if (findings > 0) {
    std::cout << "detlint: " << findings << " finding"
              << (findings == 1 ? "" : "s") << " in " << files.size()
              << " file" << (files.size() == 1 ? "" : "s") << "\n";
    return 1;
  }
  std::cout << "detlint: clean (" << files.size() << " files)\n";
  return 0;
}
