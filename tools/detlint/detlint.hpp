// detlint — the repo-specific determinism linter.
//
// The simulator's ground truth is byte-identical seeded output (see
// scripts/check_determinism.sh and tests/test_golden_runs.cpp). detlint
// turns the conventions that keep runs deterministic into mechanical,
// token-level checks over src/ — no libclang, no compile database, just
// comment/string-aware line scanning — so a violation fails CI in
// milliseconds instead of surfacing as a flaky golden test.
//
// Rule catalogue (docs/static_analysis.md has the long-form rationale):
//   wall-clock          system_clock / time(nullptr) / gettimeofday /
//                       localtime / strftime / ctime — wall time in the
//                       simulator would leak into results; the simulated
//                       clock is the only clock. (Bench/manifest stamping
//                       lives outside src/ and is not scanned.)
//   banned-rng          std::rand / srand / random_device — all randomness
//                       must come from seeded Xoshiro256ss streams.
//   unordered-iteration iterating a std::unordered_map/unordered_set
//                       declared in the same file — hash-table iteration
//                       order is implementation-defined, so anything
//                       derived from the walk (metrics, reports, RNG
//                       draws) silently loses determinism. Membership-only
//                       hash containers are fine and are not flagged.
//   unnamed-rng-stream  an RNG variable named bare `rng`/`rng_` — draws
//                       must go through a named-stream handle
//                       (protocol_rng, fault_rng_, id_rng, ...) so the
//                       fault stream can never be confused with the
//                       protocol stream at a call site.
//   bad-pragma          a malformed allowlist pragma (unknown rule id or
//                       missing reason), so suppressions cannot rot.
//
// Allowlist pragma, inline (same line) or standalone (applies to the next
// code line):
//   ... flagged code ...  // detlint: allow(wall-clock) — reason why
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace detlint {

struct Finding final {
  std::string file;     ///< path as given to lint_file / lint_source
  std::size_t line = 0; ///< 1-based
  std::string rule;     ///< rule id, e.g. "unordered-iteration"
  std::string message;  ///< human-readable detail
};

/// All known rule ids (valid targets for the allow pragma).
[[nodiscard]] const std::vector<std::string>& rule_ids();

/// Lints one translation unit given its content (fixture- and test-
/// friendly: no filesystem access). `file` is used verbatim in findings.
[[nodiscard]] std::vector<Finding> lint_source(const std::string& file,
                                               std::string_view content);

/// Reads and lints one file. A file that cannot be read yields a single
/// finding with rule "io-error".
[[nodiscard]] std::vector<Finding> lint_file(const std::string& path);

/// Recursively collects the .hpp/.cpp files under `root`, sorted so runs
/// are reproducible across filesystems.
[[nodiscard]] std::vector<std::string> collect_sources(
    const std::string& root);

/// Formats a finding as "file:line: [rule] message".
[[nodiscard]] std::string to_string(const Finding& finding);

}  // namespace detlint
