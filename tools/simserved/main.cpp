// simserved — persistent streaming-simulation daemon.
//
// Runs a continuous multi-reader warehouse workload (independent tag
// populations per reader, tag churn, burst-error downlink faults, bounded
// recovery, adaptive protocol degradation, optional injected reader
// crashes) on the deterministic simulation clock, and serves live
// telemetry over HTTP:
//
//   GET /              single-file live dashboard
//   GET /healthz       liveness + uptime + per-reader health
//   GET /metrics.json  latest aggregated MetricsSnapshot
//   GET /events        SSE stream of snapshots + typed fault events
//
//   ./simserved [--port N] [--readers N] [--tags N] [--seed N]
//               [--snapshot-ms N] [--throttle-us N] [--max-epochs N]
//               [--epochs N] [--crash-epochs N] [--checkpoint-dir PATH]
//               [--checkpoint-every N] [--final-metrics PATH]
//               [--trace PATH]
//
// The workload itself lives in core::WarehouseSim; this file is only the
// serving shell: flag parsing, wall-clock pacing, checkpoint scheduling and
// graceful shutdown. The simulation never reads a wall clock — a fixed
// (seed, epoch) pair replays bit-identically regardless of serving load.
//
// Checkpoint/resume: with --checkpoint-dir, the daemon writes an atomic
// (write-tmp + fsync + rename) sim::Checkpoint at epoch boundaries; on
// startup it resumes from an existing checkpoint automatically. Killing
// the daemon (SIGKILL included) and restarting it converges on the same
// --final-metrics bytes as an uninterrupted run at the same epoch counts —
// tests/test_checkpoint.cpp and scripts/check_checkpoint_resume.sh enforce
// this.
//
// Shutdown: SIGINT/SIGTERM set a flag; the loop finishes the round in
// flight, writes a final checkpoint, publishes a final snapshot, closes
// every SSE subscription, stops the HTTP server (joining every
// connection), flushes the optional JSONL trace sink, and prints a drain
// summary.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "core/deployment.hpp"
#include "core/warehouse.hpp"
#include "obs/stream.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/http.hpp"
#include "serve/telemetry_service.hpp"
#include "sim/checkpoint.hpp"
#include "tags/population.hpp"

namespace {

using namespace rfid;

std::atomic<int> g_signal{0};

void on_signal(int sig) { g_signal.store(sig, std::memory_order_relaxed); }

struct Options final {
  std::uint16_t port = 0;  ///< 0 = ephemeral, printed at startup
  std::size_t readers = 2;
  std::size_t tags = 256;
  std::uint64_t seed = 1;
  /// > 0 switches from the warehouse workload to the deployment simulator
  /// (core::Deployment): channel-scheduled readers over one shared
  /// population, with overlapping zones and churn-driven handoffs surfaced
  /// per channel in the snapshots.
  std::size_t channels = 0;
  double zone_overlap = 0.0;  ///< deployment mode: boundary-tag fraction
  double churn_rate = 0.0;    ///< deployment mode: per-tag per-tick hazard
  unsigned snapshot_ms = 500;
  unsigned throttle_us = 2000;  ///< sleep between round batches (0 = none)
  std::uint64_t max_epochs = 0;  ///< total across readers; 0 = no cap
  std::uint64_t epochs = 0;      ///< per-reader target; 0 = run forever
  std::uint64_t crash_epochs = 0;  ///< mean epochs between crashes; 0 = off
  std::string checkpoint_dir;    ///< empty = checkpointing off
  std::uint64_t checkpoint_every = 1;  ///< epochs between checkpoints
  std::string final_metrics_path;
  std::string trace_path;
};

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--port N] [--readers N] [--tags N] [--seed N]\n"
         "       [--snapshot-ms N] [--throttle-us N] [--max-epochs N]\n"
         "       [--epochs N] [--crash-epochs N] [--checkpoint-dir PATH]\n"
         "       [--checkpoint-every N] [--final-metrics PATH]\n"
         "       [--trace PATH]\n"
         "       [--channels N] [--zone-overlap X] [--churn-rate X]\n"
         "  integers are strictly parsed (base-10 digits only); counts\n"
         "  must be positive; --port/--throttle-us/--max-epochs/--epochs/\n"
         "  --crash-epochs may be 0\n"
         "  --channels > 0 switches to the deployment simulator (channel-\n"
         "  scheduled readers, one shared population); --zone-overlap in\n"
         "  [0,1] makes that fraction of tags boundary tags; --churn-rate\n"
         "  in [0,1) is the per-tag per-tick churn hazard (4/5 zone moves,\n"
         "  1/5 departures). Deployment mode has no checkpointing and no\n"
         "  per-session trace: --checkpoint-dir/--crash-epochs/--trace are\n"
         "  refused with --channels\n";
  return EXIT_FAILURE;
}

/// Strict non-negative decimal: digits with at most one '.', no signs or
/// exponents (parse_size_arg's policy, extended to the float flags).
std::optional<double> parse_fraction_arg(std::string_view text) {
  if (text.empty() || text == ".") return std::nullopt;
  bool dot = false;
  for (const char c : text) {
    if (c == '.') {
      if (dot) return std::nullopt;
      dot = true;
    } else if (c < '0' || c > '9') {
      return std::nullopt;
    }
  }
  return std::stod(std::string(text));
}

std::uint64_t wall_unix_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          // rfidlint: allow(wall-clock) — checkpoint/manifest stamping for operators; never feeds the simulation
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

int main(int argc, char** argv) {
  Options options;

  for (int arg = 1; arg < argc; ++arg) {
    const std::string_view flag = argv[arg];
    const auto next_size = [&](bool allow_zero) -> std::optional<std::size_t> {
      if (arg + 1 >= argc) return std::nullopt;
      return parse_size_arg(argv[++arg], allow_zero);
    };
    std::optional<std::size_t> value;
    if (flag == "--port" && (value = next_size(true))) {
      if (*value > 65535) return usage(argv[0]);
      options.port = static_cast<std::uint16_t>(*value);
    } else if (flag == "--readers" && (value = next_size(false))) {
      options.readers = *value;
    } else if (flag == "--tags" && (value = next_size(false))) {
      options.tags = *value;
    } else if (flag == "--seed" && (value = next_size(false))) {
      options.seed = *value;
    } else if (flag == "--snapshot-ms" && (value = next_size(false))) {
      options.snapshot_ms = static_cast<unsigned>(*value);
    } else if (flag == "--throttle-us" && (value = next_size(true))) {
      options.throttle_us = static_cast<unsigned>(*value);
    } else if (flag == "--max-epochs" && (value = next_size(true))) {
      options.max_epochs = *value;
    } else if (flag == "--epochs" && (value = next_size(true))) {
      options.epochs = *value;
    } else if (flag == "--crash-epochs" && (value = next_size(true))) {
      options.crash_epochs = *value;
    } else if (flag == "--checkpoint-dir" && arg + 1 < argc) {
      options.checkpoint_dir = argv[++arg];
    } else if (flag == "--checkpoint-every" && (value = next_size(false))) {
      options.checkpoint_every = *value;
    } else if (flag == "--final-metrics" && arg + 1 < argc) {
      options.final_metrics_path = argv[++arg];
    } else if (flag == "--trace" && arg + 1 < argc) {
      options.trace_path = argv[++arg];
    } else if (flag == "--channels" && (value = next_size(true))) {
      options.channels = *value;
    } else if (flag == "--zone-overlap" && arg + 1 < argc) {
      const auto fraction = parse_fraction_arg(argv[++arg]);
      if (!fraction || *fraction > 1.0) return usage(argv[0]);
      options.zone_overlap = *fraction;
    } else if (flag == "--churn-rate" && arg + 1 < argc) {
      const auto fraction = parse_fraction_arg(argv[++arg]);
      if (!fraction || *fraction >= 1.0) return usage(argv[0]);
      options.churn_rate = *fraction;
    } else {
      std::cerr << "bad argument: " << flag << '\n';
      return usage(argv[0]);
    }
  }
  if (options.channels == 0 &&
      (options.zone_overlap > 0.0 || options.churn_rate > 0.0)) {
    std::cerr << "--zone-overlap/--churn-rate need --channels\n";
    return usage(argv[0]);
  }
  if (options.channels > 0 &&
      (!options.checkpoint_dir.empty() || options.crash_epochs != 0 ||
       !options.trace_path.empty())) {
    std::cerr << "--checkpoint-dir/--crash-epochs/--trace are warehouse-mode "
                 "flags; deployment mode (--channels) does not support them\n";
    return usage(argv[0]);
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  std::optional<obs::JsonlSink> jsonl;
  std::optional<obs::Tracer> tracer;
  if (!options.trace_path.empty()) {
    jsonl.emplace(options.trace_path);
    tracer.emplace(&*jsonl);
  }

  obs::StreamingAggregator aggregator(options.readers);
  serve::TelemetryService service(aggregator);
  serve::HttpServer::Config http_config;
  http_config.port = options.port;
  serve::HttpServer server(http_config);
  service.install(server);
  try {
    server.start();
  } catch (const std::exception& error) {
    std::cerr << "cannot start server: " << error.what() << '\n';
    return EXIT_FAILURE;
  }

  if (options.channels > 0) {
    // --- Deployment mode: channel-scheduled fleet over one population ------
    // Each "epoch" is one full deployment drain; the next epoch reruns the
    // sweep over a fresh population derived from (seed, epoch), so the
    // daemon streams forever like the warehouse loop. Channel airtime and
    // fleet handoff counters accumulate across epochs.
    std::unique_ptr<parallel::ThreadPool> pool;
    if (const std::uint64_t threads = env_u64("RFID_THREADS", 0); threads > 0)
      pool = std::make_unique<parallel::ThreadPool>(
          static_cast<unsigned>(threads));

    aggregator.configure_channels(
        std::min(options.channels, options.readers));

    std::cout << "listening on http://127.0.0.1:" << server.port() << "\n"
              << "simserved: deployment mode, " << options.readers
              << " readers x " << options.tags << " tags x "
              << options.channels << " channels, overlap "
              << options.zone_overlap << ", churn " << options.churn_rate
              << ", seed " << options.seed << std::endl;

    using Clock = std::chrono::steady_clock;
    const auto interval = std::chrono::milliseconds(options.snapshot_ms);
    auto last_publish = Clock::now();
    std::uint64_t epochs_done = 0;
    std::uint64_t handoffs_base = 0;
    std::uint64_t departures_base = 0;
    std::vector<std::uint64_t> channel_rounds_base(options.channels, 0);
    std::vector<double> channel_busy_base(options.channels, 0.0);

    const std::uint64_t epoch_cap =
        options.epochs != 0 && options.max_epochs != 0
            ? std::min(options.epochs, options.max_epochs)
            : options.epochs + options.max_epochs;  // one (or both) may be 0

    while (g_signal.load(std::memory_order_relaxed) == 0) {
      core::DeploymentConfig deployment_config;
      deployment_config.readers = options.readers;
      deployment_config.channels = options.channels;
      deployment_config.session.seed = derive_seed(options.seed, epochs_done);
      deployment_config.session.keep_records = false;
      deployment_config.zone_overlap = options.zone_overlap;
      deployment_config.churn_move_per_tick = options.churn_rate * 0.8;
      deployment_config.churn_depart_per_tick = options.churn_rate * 0.2;
      const tags::TagPopulation population =
          tags::TagPopulation::uniform_random_sharded(
              options.tags, derive_seed(options.seed, epochs_done), 8);
      core::Deployment deployment(population, deployment_config, pool.get());

      while (g_signal.load(std::memory_order_relaxed) == 0 &&
             deployment.tick()) {
        const auto now = Clock::now();
        if (now - last_publish >= interval) {
          for (std::size_t r = 0; r < deployment.reader_count(); ++r) {
            aggregator.update_reader(r, deployment.reader_metrics(r), 0.0);
            aggregator.set_reader_health(r, deployment.reader_health(r));
          }
          for (std::size_t c = 0; c < deployment.channel_count(); ++c)
            aggregator.update_channel(
                c, core::channel_population(c, options.readers,
                                            deployment.channel_count()),
                channel_rounds_base[c] + deployment.channel_rounds(c),
                channel_busy_base[c] + deployment.channel_busy_us(c));
          aggregator.set_fleet_counters(
              handoffs_base + deployment.handoffs(),
              departures_base + deployment.churn_departures());
          aggregator.publish(
              std::chrono::duration<double>(now - last_publish).count());
          last_publish = now;
        }
        if (options.throttle_us != 0)
          std::this_thread::sleep_for(
              std::chrono::microseconds(options.throttle_us));
      }

      const core::DeploymentReport report = deployment.finish();
      handoffs_base += report.handoffs;
      departures_base += report.churn_departures;
      for (std::size_t c = 0; c < report.per_channel.size(); ++c) {
        channel_rounds_base[c] += report.per_channel[c].rounds;
        channel_busy_base[c] += report.per_channel[c].busy_us;
      }
      for (std::size_t r = 0; r < options.readers; ++r)
        aggregator.complete_epoch(r, report.per_reader_metrics[r]);
      ++epochs_done;
      if (epoch_cap != 0 && epochs_done >= epoch_cap) break;
    }

    const auto now = Clock::now();
    aggregator.set_fleet_counters(handoffs_base, departures_base);
    aggregator.publish(
        std::chrono::duration<double>(now - last_publish).count());
    aggregator.close_all();
    server.stop();

    if (!options.final_metrics_path.empty()) {
      std::ofstream final_metrics(options.final_metrics_path);
      if (!final_metrics.is_open()) {
        std::cerr << "cannot write " << options.final_metrics_path << '\n';
        return EXIT_FAILURE;
      }
      const auto snapshot = aggregator.latest();
      obs::write_json(final_metrics, snapshot->totals);
      final_metrics << '\n';
    }

    const int sig = g_signal.load(std::memory_order_relaxed);
    std::cout << "simserved: stopped ("
              << (sig == 0 ? "epoch limit" : sig == SIGINT ? "SIGINT"
                                                           : "SIGTERM")
              << "), " << epochs_done << " deployment epochs drained\n";
    return EXIT_SUCCESS;
  }

  core::WarehouseConfig warehouse_config;
  warehouse_config.readers = options.readers;
  warehouse_config.tags = options.tags;
  warehouse_config.seed = options.seed;
  warehouse_config.epoch_target = options.epochs;
  warehouse_config.crash_every_epochs = options.crash_epochs;
  warehouse_config.tracer = tracer ? &*tracer : nullptr;
  core::WarehouseSim warehouse(warehouse_config, aggregator);

  // Resume from an existing checkpoint before serving the first round.
  const std::string checkpoint_path =
      options.checkpoint_dir.empty() ? ""
                                     : options.checkpoint_dir +
                                           "/checkpoint.bin";
  if (!checkpoint_path.empty()) {
    // A missing directory is an empty checkpoint store, not an error:
    // create it so the first epoch-boundary write (tmp + rename inside
    // the same directory) has somewhere to land.
    std::error_code dir_error;
    std::filesystem::create_directories(options.checkpoint_dir, dir_error);
    if (dir_error) {
      std::cerr << "cannot create checkpoint dir " << options.checkpoint_dir
                << ": " << dir_error.message() << '\n';
      return EXIT_FAILURE;
    }
    try {
      if (const auto checkpoint = sim::load_checkpoint(checkpoint_path)) {
        warehouse.restore(*checkpoint);
        std::cout << "simserved: resumed from " << checkpoint_path << " at "
                  << warehouse.total_epochs() << " epochs\n";
      }
    } catch (const std::exception& error) {
      std::cerr << "cannot resume: " << error.what() << '\n';
      return EXIT_FAILURE;
    }
  }

  std::cout << "listening on http://127.0.0.1:" << server.port() << "\n"
            << "simserved: " << options.readers << " readers x "
            << options.tags << " tags, seed " << options.seed
            << ", snapshot every " << options.snapshot_ms << " ms"
            << std::endl;

  using Clock = std::chrono::steady_clock;
  const auto interval = std::chrono::milliseconds(options.snapshot_ms);
  auto last_publish = Clock::now();
  std::uint64_t total_epochs = warehouse.total_epochs();
  std::uint64_t last_checkpoint_epochs = total_epochs;

  // Checkpoint scratch, reused so the steady state allocates nothing.
  sim::Checkpoint checkpoint;
  std::vector<std::uint8_t> checkpoint_bytes;
  const auto write_checkpoint = [&] {
    if (checkpoint_path.empty()) return;
    warehouse.fill_checkpoint(checkpoint, wall_unix_ms());
    sim::encode_into(checkpoint, checkpoint_bytes);
    sim::write_checkpoint_atomic(checkpoint_path, checkpoint_bytes);
    last_checkpoint_epochs = warehouse.total_epochs();
  };

  while (g_signal.load(std::memory_order_relaxed) == 0) {
    // Round-robin: one engine round per reader per batch, so one reader's
    // deep recovery mop-up cannot starve the others' telemetry.
    total_epochs += warehouse.step();

    if (total_epochs - last_checkpoint_epochs >= options.checkpoint_every)
      write_checkpoint();

    const auto now = Clock::now();
    if (now - last_publish >= interval) {
      const double dt_s =
          std::chrono::duration<double>(now - last_publish).count();
      aggregator.publish(dt_s);
      last_publish = now;
    }
    if (options.max_epochs != 0 && total_epochs >= options.max_epochs) break;
    if (warehouse.target_reached()) break;
    if (options.throttle_us != 0)
      std::this_thread::sleep_for(
          std::chrono::microseconds(options.throttle_us));
  }

  // Graceful drain: a final checkpoint and snapshot so both durable state
  // and /metrics.json reflect the very last round, then close the streams
  // before tearing the server down.
  try {
    write_checkpoint();
  } catch (const std::exception& error) {
    std::cerr << "final checkpoint failed: " << error.what() << '\n';
  }
  const auto now = Clock::now();
  aggregator.publish(std::chrono::duration<double>(now - last_publish)
                         .count());
  aggregator.close_all();
  server.stop();
  if (tracer) tracer->finish();  // flushes the JSONL sink

  if (!options.final_metrics_path.empty()) {
    std::ofstream final_metrics(options.final_metrics_path);
    if (!final_metrics.is_open()) {
      std::cerr << "cannot write " << options.final_metrics_path << '\n';
      return EXIT_FAILURE;
    }
    warehouse.write_final_metrics(final_metrics);
  }

  const int sig = g_signal.load(std::memory_order_relaxed);
  std::cout << "simserved: stopped ("
            << (sig == 0 ? "epoch limit" : sig == SIGINT ? "SIGINT"
                                                         : "SIGTERM")
            << "), " << total_epochs << " epochs drained\n";
  return EXIT_SUCCESS;
}
