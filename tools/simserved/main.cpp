// simserved — persistent streaming-simulation daemon.
//
// Runs a continuous multi-reader warehouse workload (independent tag
// populations per reader, tag churn, burst-error downlink faults, bounded
// recovery, adaptive protocol degradation) on the deterministic simulation
// clock, and serves live telemetry over HTTP:
//
//   GET /              single-file live dashboard
//   GET /healthz       liveness + uptime
//   GET /metrics.json  latest aggregated MetricsSnapshot
//   GET /events        SSE stream of snapshots + typed fault events
//
//   ./simserved [--port N] [--readers N] [--tags N] [--seed N]
//               [--snapshot-ms N] [--throttle-us N] [--max-epochs N]
//               [--trace PATH]
//
// The simulation itself never reads a wall clock: every round runs on the
// session's deterministic microsecond clock, and a fixed (seed, epoch)
// pair replays bit-identically regardless of serving load. Wall time
// appears only here in the serving layer — pacing snapshot publishes and
// throttling the drain loop — which detlint permits outside src/ (the one
// in-tree exception, /healthz, carries its own pragma).
//
// Shutdown: SIGINT/SIGTERM set a flag; the loop finishes the round in
// flight, publishes a final snapshot, closes every SSE subscription,
// stops the HTTP server (joining every connection), flushes the optional
// JSONL trace sink, and prints a drain summary.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "fault/recovery.hpp"
#include "obs/stream.hpp"
#include "obs/trace.hpp"
#include "protocols/hash_polling.hpp"
#include "protocols/round_engine.hpp"
#include "protocols/tree_polling.hpp"
#include "serve/http.hpp"
#include "serve/telemetry_service.hpp"
#include "sim/session.hpp"
#include "tags/population.hpp"

namespace {

using namespace rfid;

std::atomic<int> g_signal{0};

void on_signal(int sig) { g_signal.store(sig, std::memory_order_relaxed); }

struct Options final {
  std::uint16_t port = 0;  ///< 0 = ephemeral, printed at startup
  std::size_t readers = 2;
  std::size_t tags = 256;
  std::uint64_t seed = 1;
  unsigned snapshot_ms = 500;
  unsigned throttle_us = 2000;  ///< sleep between round batches (0 = none)
  std::uint64_t max_epochs = 0;  ///< total across readers; 0 = run forever
  std::string trace_path;
};

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--port N] [--readers N] [--tags N] [--seed N]\n"
         "       [--snapshot-ms N] [--throttle-us N] [--max-epochs N]\n"
         "       [--trace PATH]\n"
         "  integers are strictly parsed (base-10 digits only); counts\n"
         "  must be positive, --port/--throttle-us/--max-epochs may be 0\n";
  return EXIT_FAILURE;
}

/// One simulated reader: an endlessly repeating drain of its own tag
/// population, each epoch re-seeded and re-churned, reporting into the
/// shared StreamingAggregator.
class ReaderSim final {
 public:
  ReaderSim(std::size_t index, const Options& options,
            obs::StreamingAggregator& aggregator, obs::Tracer* tracer)
      : index_(index),
        options_(options),
        aggregator_(aggregator),
        tracer_(tracer),
        hpp_policy_(protocols::HppRoundConfig{}),
        tpp_policy_(protocols::Tpp::Config{}) {
    // Distinct populations per reader, stable across epochs: the warehouse
    // zone a reader covers does not change, only which tags are in it.
    Xoshiro256ss pop_rng(options.seed * 1000003ull + index);
    population_ = tags::TagPopulation::uniform_random(options.tags, pop_rng);
    aggregator_.set_retry_budget(index_, 8);
    begin_epoch();
  }

  /// Runs one engine round. Returns true when the round completed an epoch
  /// (population drained) and a fresh session was started.
  bool step() {
    // Adaptive tier: the session's degradation policy watches observed
    // downlink corruption and the daemon honours its TPP->HPP downgrades
    // (EHPP shares HPP's round shape at this layer).
    const analysis::PollingTier tier =
        session_->degradation_tier(active_.size());
    protocols::RoundPolicy& policy = tier == analysis::PollingTier::kTpp
                                         ? static_cast<protocols::RoundPolicy&>(
                                               tpp_policy_)
                                         : hpp_policy_;
    if (!engine_->run_round(active_, policy)) {
      // Round-init undeliverable: bounded retry, then give up loudly on
      // whatever is left so the epoch still terminates.
      if (++init_failures_ > 8) engine_->abandon_active(active_);
    } else {
      init_failures_ = 0;
    }
    aggregator_.update_reader(index_, session_->metrics(),
                              session_->downlink().estimated_ber());
    if (!active_.empty()) return false;

    aggregator_.complete_epoch(index_, session_->metrics());
    ++epochs_;
    begin_epoch();
    return true;
  }

  [[nodiscard]] std::uint64_t epochs() const noexcept { return epochs_; }

 private:
  /// Builds the fault plan for one epoch: a bursty downlink plus a churn
  /// schedule where ~1/8 of the tags depart mid-drain and a few outsiders
  /// arrive late. All draws come from a named per-reader stream seeded by
  /// (seed, reader, epoch), so a daemon restart replays identically.
  void begin_epoch() {
    sim::SessionConfig config;
    config.seed = options_.seed ^ (0x9E3779B97F4A7C15ull * (index_ + 1)) ^
                  (epochs_ * 0x7F4A7C15ull);
    config.keep_records = false;
    config.tracer = tracer_;
    config.fault.link = fault::LinkModel::kGilbertElliott;
    config.fault.downlink_ber = 2e-4;
    config.framing.enabled = true;
    config.recovery.enabled = true;
    config.recovery.retry_budget = 8;
    config.degradation.enabled = true;

    Xoshiro256ss churn_rng(config.seed ^ 0xC0FFEEull);
    const auto& tags_list = population_.tags();
    for (std::size_t t = 0; t < tags_list.size(); ++t) {
      const std::uint64_t draw = churn_rng();
      fault::ChurnEvent event;
      event.id = tags_list[t].id();
      event.round = 2 + draw % 24;
      if (draw % 8 == 0) {
        event.kind = fault::ChurnEvent::Kind::kDepart;
        config.fault.churn.push_back(event);
      } else if (draw % 8 == 1) {
        // First event is an arrival: the tag starts outside the zone and
        // shows up mid-epoch.
        event.kind = fault::ChurnEvent::Kind::kArrive;
        config.fault.churn.push_back(event);
      }
    }

    session_ = std::make_unique<sim::Session>(population_, config);
    recovery_ =
        std::make_unique<fault::RecoveryCoordinator>(config.recovery);
    engine_ = std::make_unique<protocols::RoundEngine>(*session_, *recovery_);
    active_ = protocols::make_devices(*session_);
    init_failures_ = 0;
  }

  const std::size_t index_;
  const Options& options_;
  obs::StreamingAggregator& aggregator_;
  obs::Tracer* tracer_;
  tags::TagPopulation population_{};
  protocols::HppRoundPolicy hpp_policy_;
  protocols::TppRoundPolicy tpp_policy_;
  std::unique_ptr<sim::Session> session_;
  std::unique_ptr<fault::RecoveryCoordinator> recovery_;
  std::unique_ptr<protocols::RoundEngine> engine_;
  tags::TagSoA active_;
  std::uint64_t epochs_ = 0;
  unsigned init_failures_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Options options;

  for (int arg = 1; arg < argc; ++arg) {
    const std::string_view flag = argv[arg];
    const auto next_size = [&](bool allow_zero) -> std::optional<std::size_t> {
      if (arg + 1 >= argc) return std::nullopt;
      return parse_size_arg(argv[++arg], allow_zero);
    };
    std::optional<std::size_t> value;
    if (flag == "--port" && (value = next_size(true))) {
      if (*value > 65535) return usage(argv[0]);
      options.port = static_cast<std::uint16_t>(*value);
    } else if (flag == "--readers" && (value = next_size(false))) {
      options.readers = *value;
    } else if (flag == "--tags" && (value = next_size(false))) {
      options.tags = *value;
    } else if (flag == "--seed" && (value = next_size(false))) {
      options.seed = *value;
    } else if (flag == "--snapshot-ms" && (value = next_size(false))) {
      options.snapshot_ms = static_cast<unsigned>(*value);
    } else if (flag == "--throttle-us" && (value = next_size(true))) {
      options.throttle_us = static_cast<unsigned>(*value);
    } else if (flag == "--max-epochs" && (value = next_size(true))) {
      options.max_epochs = *value;
    } else if (flag == "--trace" && arg + 1 < argc) {
      options.trace_path = argv[++arg];
    } else {
      std::cerr << "bad argument: " << flag << '\n';
      return usage(argv[0]);
    }
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  std::optional<obs::JsonlSink> jsonl;
  std::optional<obs::Tracer> tracer;
  if (!options.trace_path.empty()) {
    jsonl.emplace(options.trace_path);
    tracer.emplace(&*jsonl);
  }

  obs::StreamingAggregator aggregator(options.readers);
  serve::TelemetryService service(aggregator);
  serve::HttpServer::Config http_config;
  http_config.port = options.port;
  serve::HttpServer server(http_config);
  service.install(server);
  try {
    server.start();
  } catch (const std::exception& error) {
    std::cerr << "cannot start server: " << error.what() << '\n';
    return EXIT_FAILURE;
  }

  std::vector<std::unique_ptr<ReaderSim>> readers;
  readers.reserve(options.readers);
  for (std::size_t r = 0; r < options.readers; ++r)
    readers.push_back(std::make_unique<ReaderSim>(
        r, options, aggregator, tracer ? &*tracer : nullptr));

  std::cout << "listening on http://127.0.0.1:" << server.port() << "\n"
            << "simserved: " << options.readers << " readers x "
            << options.tags << " tags, seed " << options.seed
            << ", snapshot every " << options.snapshot_ms << " ms"
            << std::endl;

  using Clock = std::chrono::steady_clock;
  const auto interval = std::chrono::milliseconds(options.snapshot_ms);
  auto last_publish = Clock::now();
  std::uint64_t total_epochs = 0;

  while (g_signal.load(std::memory_order_relaxed) == 0) {
    // Round-robin: one engine round per reader per batch, so one reader's
    // deep recovery mop-up cannot starve the others' telemetry.
    for (auto& reader : readers)
      if (reader->step()) ++total_epochs;

    const auto now = Clock::now();
    if (now - last_publish >= interval) {
      const double dt_s =
          std::chrono::duration<double>(now - last_publish).count();
      aggregator.publish(dt_s);
      last_publish = now;
    }
    if (options.max_epochs != 0 && total_epochs >= options.max_epochs) break;
    if (options.throttle_us != 0)
      std::this_thread::sleep_for(
          std::chrono::microseconds(options.throttle_us));
  }

  // Graceful drain: one final snapshot so /metrics.json reflects the very
  // last round, then close the streams before tearing the server down.
  const auto now = Clock::now();
  aggregator.publish(std::chrono::duration<double>(now - last_publish)
                         .count());
  aggregator.close_all();
  server.stop();
  if (tracer) tracer->finish();  // flushes the JSONL sink

  const int sig = g_signal.load(std::memory_order_relaxed);
  std::cout << "simserved: stopped ("
            << (sig == 0 ? "epoch limit" : sig == SIGINT ? "SIGINT"
                                                         : "SIGTERM")
            << "), " << total_epochs << " epochs drained\n";
  return EXIT_SUCCESS;
}
