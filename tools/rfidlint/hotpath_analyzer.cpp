// hotpath-alloc analyzer: regions marked `// rfidlint: hotpath(<name>)`
// carry the repo's zero-allocation contract (the alloc-guard ctests pin it
// dynamically; this catches violations on paths a test never executes).
// Token-level allocation catalogue:
//   - operator new, make_unique / make_shared
//   - growing-container members: .push_back / .emplace_back / .emplace /
//     .insert / .resize / .reserve / .assign / .append
//   - std::function construction (type named in the region)
//   - std::string temporaries and std::to_string
// A deliberate slow-path allocation (churn handling, first-round scratch
// growth) stays, with an inline `rfidlint: allow(hotpath-alloc) — reason`.
#include <string>
#include <vector>

#include "rfidlint.hpp"

namespace rfidlint {

namespace {

constexpr std::string_view kRuleHotpathAlloc = "hotpath-alloc";

/// True when the word at `pos` is reached through `.` or `->` (a member
/// call on some object, not a free function or declaration).
[[nodiscard]] bool member_access_before(std::string_view code,
                                        std::size_t pos) {
  const std::size_t before = rskip_spaces(code, pos);
  if (before == std::string_view::npos) return false;
  if (code[before] == '.') return true;
  return code[before] == '>' && before > 0 && code[before - 1] == '-';
}

void check_line(std::vector<Finding>& findings, const FileContext& context,
                const AnnotatedRegion& region, std::size_t line_no,
                std::string_view code) {
  const auto flag = [&](std::string_view what) {
    add_finding(findings, context, line_no, kRuleHotpathAlloc,
                "allocating construct '" + std::string(what) +
                    "' inside hotpath(" + region.name +
                    "); the hot path must not allocate — hoist it, reuse "
                    "capacity, or justify with an allow pragma");
  };

  for (const std::string_view token :
       {std::string_view("new"), std::string_view("make_unique"),
        std::string_view("make_shared"), std::string_view("to_string")}) {
    if (find_word(code, token) != std::string_view::npos) flag(token);
  }
  for (const std::string_view member :
       {std::string_view("push_back"), std::string_view("emplace_back"),
        std::string_view("emplace"), std::string_view("insert"),
        std::string_view("resize"), std::string_view("reserve"),
        std::string_view("assign"), std::string_view("append")}) {
    for (std::size_t pos = find_word(code, member);
         pos != std::string_view::npos;
         pos = find_word(code, member, pos + 1)) {
      if (member_access_before(code, pos)) {
        flag(member);
        break;
      }
    }
  }
  // std::function<...> names a type whose construction heap-allocates for
  // any non-trivial callable; std::string(...) / std::string{...} builds a
  // heap temporary.
  for (const std::string_view type :
       {std::string_view("function"), std::string_view("string")}) {
    for (std::size_t pos = find_word(code, type);
         pos != std::string_view::npos;
         pos = find_word(code, type, pos + 1)) {
      if (pos < 2 || code.substr(pos - 2, 2) != "::") continue;
      const std::size_t after = skip_spaces(code, pos + type.size());
      const bool is_function = type == "function";
      if (after < code.size() &&
          (code[after] == (is_function ? '<' : '(') ||
           (!is_function && code[after] == '{'))) {
        flag(is_function ? "std::function" : "std::string");
        break;
      }
    }
  }
}

class HotpathAnalyzer final : public Analyzer {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "hotpath-alloc";
  }
  [[nodiscard]] std::vector<std::string_view> rules() const override {
    return {kRuleHotpathAlloc};
  }
  void analyze(const FileContext& context,
               std::vector<Finding>& out) const override {
    const SourceFile& source = *context.source;
    for (const AnnotatedRegion& region : context.hotpaths) {
      for (std::size_t line = region.body.begin_line;
           line <= region.body.end_line && line <= source.line_count();
           ++line) {
        check_line(out, context, region, line, source.code(line - 1));
      }
    }
  }
};

}  // namespace

const Analyzer& hotpath_analyzer() {
  static const HotpathAnalyzer kAnalyzer;
  return kAnalyzer;
}

}  // namespace rfidlint
