// rfidlint — the repo-specific static-analysis framework.
//
// PR 5's detlint proved that a dependency-free token-level linter can gate
// the whole tree in CI in milliseconds. rfidlint grows it into a framework:
// one shared lexer (lex.hpp) feeds pluggable analyzers, each owning its own
// rule ids, so the architecture invariants PRs 4–9 established are enforced
// statically instead of only when a covered path executes.
//
// Analyzers and their rules (docs/static_analysis.md has the long form):
//   determinism      wall-clock            wall-time sources in simulator code
//     (analyzer 0)   unordered-iteration   walking a hash container declared
//                                          in the same file
//   layer-graph      layer-violation       #include edge not allowed by the
//                                          declared layer DAG (layers.spec)
//                    undeclared-layer      file or include target in a layer
//                                          the spec does not declare
//                    layer-spec            layer spec itself fails to parse
//   hotpath-alloc    hotpath-alloc         allocating construct inside a
//                                          region marked rfidlint: hotpath(x)
//   rng-purity       banned-rng            rand()/srand/random_device
//                    unnamed-rng-stream    draws through a bare `rng` handle
//                    conditional-draw      RNG draw nested under a
//                                          non-arm-gate conditional inside a
//                                          rfidlint: rng-position-pure(x)
//                                          region (PR 8–9 draw-position
//                                          contract)
//   phase-accounting unphased-charge       `time_us +=` with no obs::Phase
//                                          attribution nearby
//                    raw-phase-mutation    `phases.us[...] +=` outside
//                                          src/obs
// Framework-owned rules:
//   bad-pragma       malformed directive, unknown rule id, missing reason,
//                    or a region marker that precedes no brace block
//   legacy-pragma    (warning) directive spelled with the old `detlint:`
//                    prefix — still honored, migrate to `rfidlint:`
//
// Suppression, inline (same line) or standalone (applies to the next code
// line):
//   ... flagged code ...  // rfidlint: allow(<rule>) — reason why
//
// Warnings print but do not affect the exit code; errors exit 1.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lex.hpp"

namespace rfidlint {

enum class Severity { kWarning, kError };

struct Finding final {
  std::string file;      ///< path as given to lint_file / lint_source
  std::size_t line = 0;  ///< 1-based
  std::string rule;      ///< rule id, e.g. "layer-violation"
  std::string message;   ///< human-readable detail
  Severity severity = Severity::kError;
};

/// One parse problem in a layer spec (line is 1-based; 0 = whole file).
struct SpecError final {
  std::size_t line = 0;
  std::string message;
};

/// The declared layer DAG. Spec grammar, one declaration per line
/// (# starts a comment):
///
///   layer <name>: <dep> <dep> ...   a layer and the layers it may include
///   top <name>                      a scope above all layers (tools, tests)
///
/// Every dep must have been declared on an earlier line, so declaration
/// order is a topological order and cycles cannot be written down.
struct LayerSpec final {
  std::vector<std::string> order;  ///< layers in declaration order
  /// Reflexive-transitive closure: allowed.at(L) holds every layer L may
  /// include from (always contains L itself).
  std::map<std::string, std::set<std::string>> allowed;
  std::set<std::string> tops;
  std::vector<SpecError> errors;

  [[nodiscard]] bool ok() const noexcept { return errors.empty(); }
  [[nodiscard]] bool declares(const std::string& layer) const {
    return allowed.count(layer) != 0;
  }
  [[nodiscard]] bool allows(const std::string& from,
                            const std::string& to) const {
    const auto it = allowed.find(from);
    return it != allowed.end() && it->second.count(to) != 0;
  }
};

[[nodiscard]] LayerSpec parse_layer_spec(std::string_view content);

/// Reads and parses a spec file; an unreadable file yields a single
/// line-0 error.
[[nodiscard]] LayerSpec load_layer_spec(const std::string& path);

struct Options final {
  /// Layer DAG for the layer-graph analyzer; nullptr disables it.
  const LayerSpec* layers = nullptr;
  /// Analyzer names to run; empty means all.
  std::vector<std::string> analyzers;
};

/// A region marker (`hotpath` / `rng-position-pure`) resolved to the brace
/// block it precedes.
struct AnnotatedRegion final {
  std::string name;
  Region body;
  std::size_t directive_line = 0;  ///< 1-based, for messages
};

/// Everything an analyzer gets to see about one translation unit.
struct FileContext final {
  const SourceFile* source = nullptr;
  /// Repo-relative path with '/' separators ("src/sim/air_loop.cpp");
  /// drives path-scoped rules (layer membership, src/obs exemption).
  std::string rel;
  const Options* options = nullptr;
  std::vector<AnnotatedRegion> hotpaths;
  std::vector<AnnotatedRegion> rng_pure;
};

class Analyzer {
 public:
  virtual ~Analyzer() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual std::vector<std::string_view> rules() const = 0;
  virtual void analyze(const FileContext& context,
                       std::vector<Finding>& out) const = 0;
};

/// The registry, in fixed order (determinism analyzer first).
[[nodiscard]] const std::vector<const Analyzer*>& analyzers();

/// All known rule ids (valid targets for the allow pragma): the detlint-era
/// ids first, then the framework's, then each new analyzer's.
[[nodiscard]] const std::vector<std::string>& rule_ids();

/// Lints one translation unit given its content (fixture- and test-
/// friendly: no filesystem access). `file` is used verbatim in findings;
/// `rel` is the repo-relative path for path-scoped rules and defaults to
/// `file` when empty.
[[nodiscard]] std::vector<Finding> lint_source(const std::string& file,
                                               std::string_view content,
                                               const Options& options = {},
                                               std::string_view rel = {});

/// Reads and lints one file. A file that cannot be read yields a single
/// finding with rule "io-error".
[[nodiscard]] std::vector<Finding> lint_file(const std::string& path,
                                             const Options& options = {},
                                             std::string_view rel = {});

/// Recursively collects the .hpp/.cpp files under `root`, sorted so runs
/// are reproducible across filesystems.
[[nodiscard]] std::vector<std::string> collect_sources(
    const std::string& root);

/// True when any finding is an error (warnings alone keep exit code 0).
[[nodiscard]] bool has_errors(const std::vector<Finding>& findings);

/// Formats a finding as "file:line: [rule] message" (warnings get a
/// "warning:" marker after the rule).
[[nodiscard]] std::string to_string(const Finding& finding);

/// Appends one finding; shared by the analyzers.
void add_finding(std::vector<Finding>& findings, const FileContext& context,
                 std::size_t line, std::string_view rule, std::string message,
                 Severity severity = Severity::kError);

// Analyzer factories, one per translation unit.
[[nodiscard]] const Analyzer& determinism_analyzer();
[[nodiscard]] const Analyzer& layer_analyzer();
[[nodiscard]] const Analyzer& hotpath_analyzer();
[[nodiscard]] const Analyzer& rng_purity_analyzer();
[[nodiscard]] const Analyzer& phase_analyzer();

}  // namespace rfidlint
