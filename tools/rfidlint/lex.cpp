#include "lex.hpp"

#include <algorithm>
#include <cctype>

namespace rfidlint {

bool is_word(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool word_at(std::string_view text, std::size_t pos, std::string_view word) {
  if (pos + word.size() > text.size()) return false;
  if (text.substr(pos, word.size()) != word) return false;
  if (pos > 0 && is_word(text[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  return end == text.size() || !is_word(text[end]);
}

std::size_t find_word(std::string_view text, std::string_view word,
                      std::size_t from) {
  for (std::size_t pos = text.find(word, from); pos != std::string_view::npos;
       pos = text.find(word, pos + 1)) {
    if (word_at(text, pos, word)) return pos;
  }
  return std::string_view::npos;
}

std::size_t skip_spaces(std::string_view text, std::size_t pos) {
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos])) != 0)
    ++pos;
  return pos;
}

std::size_t rskip_spaces(std::string_view text, std::size_t pos) {
  while (pos > 0) {
    --pos;
    if (std::isspace(static_cast<unsigned char>(text[pos])) == 0) return pos;
  }
  return std::string_view::npos;
}

SplitLine LineSplitter::split(std::string_view line) {
  SplitLine out;
  out.code.assign(line.size(), ' ');
  std::size_t i = 0;

  // A preprocessor directive has no lintable code; its comment part can
  // still carry a pragma, so comments are extracted as usual. (The layer
  // analyzer reads #include targets off the raw line, not the code part.)
  if (!in_block_comment_ && !in_raw_string_) {
    const std::size_t first = skip_spaces(line, 0);
    if (first < line.size() && line[first] == '#') {
      const std::size_t slash = line.find("//", first);
      if (slash != std::string_view::npos)
        out.comment.assign(line.substr(slash + 2));
      return out;
    }
  }

  while (i < line.size()) {
    if (in_block_comment_) {
      const std::size_t end = line.find("*/", i);
      if (end == std::string_view::npos) {
        out.comment += line.substr(i);
        return out;
      }
      out.comment += line.substr(i, end - i);
      in_block_comment_ = false;
      i = end + 2;
      continue;
    }
    if (in_raw_string_) {
      const std::string closer = ")" + raw_delimiter_ + "\"";
      const std::size_t end = line.find(closer, i);
      if (end == std::string_view::npos) return out;
      in_raw_string_ = false;
      i = end + closer.size();
      continue;
    }
    const char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
      out.comment += line.substr(i + 2);
      return out;
    }
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      in_block_comment_ = true;
      i += 2;
      continue;
    }
    if (c == 'R' && i + 1 < line.size() && line[i + 1] == '"' &&
        (i == 0 || !is_word(line[i - 1]))) {
      const std::size_t open = line.find('(', i + 2);
      if (open != std::string_view::npos) {
        raw_delimiter_.assign(line.substr(i + 2, open - (i + 2)));
        in_raw_string_ = true;
        i = open + 1;
        continue;
      }
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\') {
          i += 2;
          continue;
        }
        if (line[i] == quote) {
          ++i;
          break;
        }
        ++i;
      }
      continue;
    }
    out.code[i] = c;
    ++i;
  }
  return out;
}

namespace {

/// Trims leading/trailing spaces in place.
void trim(std::string& s) {
  while (!s.empty() && s.front() == ' ') s.erase(s.begin());
  while (!s.empty() && s.back() == ' ') s.pop_back();
}

/// Parses one directive starting right after its `<prefix>:` marker.
[[nodiscard]] Directive parse_one(std::string_view comment, std::size_t pos,
                                  bool legacy, std::size_t line) {
  Directive directive;
  directive.legacy = legacy;
  directive.line = line;

  // Directive verb: a run of word characters and hyphens.
  std::size_t i = skip_spaces(comment, pos);
  const std::size_t verb_begin = i;
  while (i < comment.size() && (is_word(comment[i]) || comment[i] == '-'))
    ++i;
  const std::string verb(comment.substr(verb_begin, i - verb_begin));

  const bool is_allow = verb == "allow";
  const bool is_region = verb == "hotpath" || verb == "rng-position-pure";
  if (!is_allow && !is_region) {
    directive.problem = verb.empty()
                            ? "missing directive verb"
                            : "unknown directive '" + verb + "'";
    return directive;
  }
  if (legacy && is_region) {
    directive.problem =
        "region directive '" + verb + "' needs the rfidlint: spelling";
    return directive;
  }

  i = skip_spaces(comment, i);
  if (i >= comment.size() || comment[i] != '(') {
    directive.problem = "expected '(' after '" + verb + "'";
    return directive;
  }
  const std::size_t close = comment.find(')', i);
  if (close == std::string_view::npos) {
    directive.problem = "unterminated '(' after '" + verb + "'";
    return directive;
  }
  directive.argument.assign(comment.substr(i + 1, close - i - 1));
  trim(directive.argument);
  if (directive.argument.empty()) {
    directive.problem = "'" + verb + "' needs a non-empty argument";
    return directive;
  }

  if (is_allow) {
    directive.kind = Directive::Kind::kAllow;
    // A reason is any word character after the closing paren (separators
    // like "—" / "-" / ":" alone do not count).
    for (std::size_t r = close + 1; r < comment.size(); ++r) {
      if (is_word(comment[r])) {
        directive.has_reason = true;
        break;
      }
    }
  } else {
    directive.kind = verb == "hotpath" ? Directive::Kind::kHotpath
                                       : Directive::Kind::kRngPositionPure;
  }
  return directive;
}

}  // namespace

std::vector<Directive> parse_directives(std::string_view comment,
                                        std::size_t line) {
  std::vector<Directive> directives;
  // A directive is anchored: the prefix must be the first non-space
  // content of the comment. Prose that merely *mentions* a pragma
  // spelling mid-sentence (fixture headers, docs) is not a directive.
  const std::size_t start = skip_spaces(comment, 0);
  for (const std::string_view prefix :
       {std::string_view("rfidlint:"), std::string_view("detlint:")}) {
    if (comment.substr(start, std::min(prefix.size(),
                                       comment.size() - start)) != prefix)
      continue;
    directives.push_back(parse_one(comment, start + prefix.size(),
                                   /*legacy=*/prefix == "detlint:", line));
    break;
  }
  return directives;
}

SourceFile::SourceFile(std::string path, std::string_view content)
    : path_(std::move(path)) {
  LineSplitter splitter;
  std::size_t start = 0;
  while (start <= content.size()) {
    const std::size_t end = content.find('\n', start);
    const std::string_view line =
        content.substr(start, end == std::string_view::npos
                                  ? std::string_view::npos
                                  : end - start);
    raw_.emplace_back(line);
    lines_.push_back(splitter.split(line));
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  for (std::size_t i = 0; i < lines_.size(); ++i) {
    if (lines_[i].comment.empty()) continue;
    for (Directive& directive : parse_directives(lines_[i].comment, i + 1))
      directives_.push_back(std::move(directive));
  }
}

bool SourceFile::code_empty(std::size_t i) const {
  const std::string& code = lines_[i].code;
  return std::all_of(code.begin(), code.end(), [](char c) {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
  });
}

std::optional<Region> next_brace_block(const SourceFile& source,
                                       std::size_t from_line,
                                       std::size_t max_scan_lines) {
  const std::size_t first = from_line == 0 ? 0 : from_line - 1;
  const std::size_t scan_limit =
      std::min(source.line_count(), first + max_scan_lines + 1);
  int depth = 0;
  Region region;
  for (std::size_t i = first; i < source.line_count(); ++i) {
    if (region.begin_line == 0 && i >= scan_limit) return std::nullopt;
    const std::string_view code = source.code(i);
    for (const char c : code) {
      if (c == '{') {
        if (depth == 0) region.begin_line = i + 1;
        ++depth;
      } else if (c == '}') {
        if (depth > 0 && --depth == 0) {
          region.end_line = i + 1;
          return region;
        }
      }
    }
  }
  return std::nullopt;
}

}  // namespace rfidlint
