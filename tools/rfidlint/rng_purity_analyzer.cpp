// rng-purity analyzer: the detlint-era RNG rules (banned sources, unnamed
// stream handles) plus the PR 8–9 draw-position contract. A region marked
// `// rfidlint: rng-position-pure(<name>)` promises that its stream
// position after N calls depends only on N and the config — one draw per
// *armed* probability, never gated on sampled data. Inside such a region a
// draw may sit under an arm-gate conditional (`p > 0`, `enabled(...)`:
// config-derived, stable across the run) but not under any other
// conditional, where a data-dependent branch would shift every later draw.
// Guard forms on the draw's own statement (`p > 0.0 && rng_.bernoulli(p)`,
// ternaries, `if (...)` condition lines) stay legal: they do not nest the
// draw inside a conditional *block*.
#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "rfidlint.hpp"

namespace rfidlint {

namespace {

constexpr std::string_view kRuleBannedRng = "banned-rng";
constexpr std::string_view kRuleUnnamedRngStream = "unnamed-rng-stream";
constexpr std::string_view kRuleConditionalDraw = "conditional-draw";

/// banned-rng: randomness not drawn from a seeded Xoshiro256ss stream.
void check_banned_rng(std::vector<Finding>& findings,
                      const FileContext& context, std::size_t line_no,
                      std::string_view code) {
  if (find_word(code, "random_device") != std::string_view::npos)
    add_finding(findings, context, line_no, kRuleBannedRng,
                "std::random_device is nondeterministic; seed a "
                "Xoshiro256ss stream instead");
  if (find_word(code, "srand") != std::string_view::npos)
    add_finding(findings, context, line_no, kRuleBannedRng,
                "srand() seeds hidden global state; use a Xoshiro256ss "
                "stream");
  for (std::size_t pos = find_word(code, "rand");
       pos != std::string_view::npos; pos = find_word(code, "rand", pos + 1)) {
    const std::size_t i = skip_spaces(code, pos + 4);
    if (i < code.size() && code[i] == '(')
      add_finding(findings, context, line_no, kRuleBannedRng,
                  "rand() draws from hidden global state; use a "
                  "Xoshiro256ss stream");
  }
}

/// unnamed-rng-stream: a draw through a handle named bare `rng`/`rng_`.
void check_unnamed_rng_stream(std::vector<Finding>& findings,
                              const FileContext& context,
                              std::size_t line_no, std::string_view code) {
  for (const std::string_view name :
       {std::string_view("rng"), std::string_view("rng_")}) {
    for (std::size_t pos = find_word(code, name);
         pos != std::string_view::npos;
         pos = find_word(code, name, pos + 1)) {
      const std::size_t after = skip_spaces(code, pos + name.size());
      if (after < code.size() &&
          (code[after] == '.' || code[after] == '(' ||
           (code[after] == '-' && after + 1 < code.size() &&
            code[after + 1] == '>'))) {
        add_finding(findings, context, line_no, kRuleUnnamedRngStream,
                    "RNG handle named bare '" + std::string(name) +
                        "': draws must go through a named stream "
                        "(protocol_rng, fault_rng_, id_rng, ...) so "
                        "streams cannot cross");
      }
    }
  }
}

/// True when the line carries a draw through a stream handle
/// (`.bernoulli(` / `.below(` / `.uniform01(`).
[[nodiscard]] bool has_draw(std::string_view code) {
  for (const std::string_view draw :
       {std::string_view("bernoulli"), std::string_view("below"),
        std::string_view("uniform01")}) {
    for (std::size_t pos = find_word(code, draw);
         pos != std::string_view::npos;
         pos = find_word(code, draw, pos + 1)) {
      const std::size_t before = rskip_spaces(code, pos);
      if (before == std::string_view::npos) continue;
      if (code[before] == '.' ||
          (code[before] == '>' && before > 0 && code[before - 1] == '-'))
        return true;
    }
  }
  return false;
}

/// An arm-gate condition depends only on the config: a probability tested
/// armed (`> 0`) or an explicit enable switch (`enabled(...)`).
[[nodiscard]] bool is_arm_gate(std::string_view condition) {
  std::string packed;
  for (const char c : condition)
    if (c != ' ' && c != '\t') packed += c;
  return packed.find(">0") != std::string::npos ||
         packed.find("enabled(") != std::string::npos;
}

/// Tracks conditional nesting across one rng-position-pure region and
/// flags draws inside non-arm-gate conditional blocks. Line-granular by
/// design: a draw on the same line as its `if` is the sanctioned
/// same-statement guard form and is never flagged.
void check_region(std::vector<Finding>& findings, const FileContext& context,
                  const AnnotatedRegion& region) {
  const SourceFile& source = *context.source;
  // One entry per open brace inside the region; true = neutral or
  // arm-gated, false = a conditional block a draw must not sit in.
  std::vector<bool> gates;
  // A classified `if`/`else` waiting for its `{` (or `;` if braceless).
  std::optional<bool> pending;
  // When an if-condition spans lines, collect it until parens balance.
  bool collecting = false;
  int cond_depth = 0;
  std::string cond_text;

  for (std::size_t line = region.body.begin_line;
       line <= region.body.end_line && line <= source.line_count(); ++line) {
    const std::string_view code = source.code(line - 1);
    const bool line_has_if =
        find_word(code, "if") != std::string_view::npos;

    if (!line_has_if && has_draw(code)) {
      const bool in_unarmed_block =
          std::find(gates.begin(), gates.end(), false) != gates.end();
      if (in_unarmed_block || (pending.has_value() && !*pending)) {
        add_finding(
            findings, context, line, kRuleConditionalDraw,
            "RNG draw nested under a conditional inside "
            "rng-position-pure(" +
                region.name +
                "); draws must be position-pure — one draw per armed "
                "probability, gated only on config (`p > 0`, `enabled()`)");
      }
    }

    std::size_t i = 0;
    while (i < code.size()) {
      const char c = code[i];
      if (collecting) {
        cond_text += c;
        if (c == '(') ++cond_depth;
        if (c == ')' && --cond_depth == 0) {
          collecting = false;
          pending = is_arm_gate(cond_text);
        }
        ++i;
        continue;
      }
      if (word_at(code, i, "if")) {
        const std::size_t open = code.find('(', i + 2);
        if (open != std::string_view::npos) {
          collecting = true;
          cond_depth = 0;
          cond_text.clear();
          i = open;
          continue;  // re-enter the loop in collecting mode at '('
        }
        i += 2;
        continue;
      }
      if (word_at(code, i, "else")) {
        // Bare `else`: the disarmed arm of a gate; `else if` re-classifies
        // via the `if` branch above on a later character.
        pending = false;
        i += 4;
        continue;
      }
      if (c == '{') {
        gates.push_back(pending.value_or(true));
        pending.reset();
      } else if (c == '}') {
        if (!gates.empty()) gates.pop_back();
      } else if (c == ';' && pending.has_value()) {
        pending.reset();  // braceless body ended
      }
      ++i;
    }
  }
}

class RngPurityAnalyzer final : public Analyzer {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "rng-purity";
  }
  [[nodiscard]] std::vector<std::string_view> rules() const override {
    return {kRuleBannedRng, kRuleUnnamedRngStream, kRuleConditionalDraw};
  }
  void analyze(const FileContext& context,
               std::vector<Finding>& out) const override {
    const SourceFile& source = *context.source;
    for (std::size_t i = 0; i < source.line_count(); ++i) {
      check_banned_rng(out, context, i + 1, source.code(i));
      check_unnamed_rng_stream(out, context, i + 1, source.code(i));
    }
    for (const AnnotatedRegion& region : context.rng_pure)
      check_region(out, context, region);
  }
};

}  // namespace

const Analyzer& rng_purity_analyzer() {
  static const RngPurityAnalyzer kAnalyzer;
  return kAnalyzer;
}

}  // namespace rfidlint
