// phase-accounting analyzer: every airtime charge must name an obs::Phase.
// The phase breakdown (obs::PhaseBreakdown) is the paper-facing output that
// splits protocol airtime into reader-vector / command / turnaround /
// tag-reply / wasted-slot / recovery time; a `time_us +=` with no phase
// attribution silently under-reports one of those buckets. Attribution is
// recognised within a 3-line window after the charge (`add_phase`,
// `on_phase`, `phases.add`) — every legitimate charge site in the tree
// attributes on the same or next line; the window gives multi-line call
// formatting room. Raw `phases.us[...] +=` mutation belongs to src/obs
// (PhaseBreakdown::add / merge); anywhere else it bypasses the recovery
// redirect (AirLoop::add_phase) and the merge invariants.
#include <string>
#include <vector>

#include "rfidlint.hpp"

namespace rfidlint {

namespace {

constexpr std::string_view kRuleUnphasedCharge = "unphased-charge";
constexpr std::string_view kRuleRawPhaseMutation = "raw-phase-mutation";

/// How many lines after a charge may carry its phase attribution.
constexpr std::size_t kAttributionWindow = 3;

/// True when `word` at some position is followed (spaces aside) by `+=`.
[[nodiscard]] bool word_followed_by_plus_equals(std::string_view code,
                                                std::string_view word) {
  for (std::size_t pos = find_word(code, word);
       pos != std::string_view::npos;
       pos = find_word(code, word, pos + 1)) {
    const std::size_t after = skip_spaces(code, pos + word.size());
    if (after + 1 < code.size() && code[after] == '+' &&
        code[after + 1] == '=')
      return true;
  }
  return false;
}

/// True when the line names a phase-attribution call.
[[nodiscard]] bool has_attribution(std::string_view code) {
  if (find_word(code, "add_phase") != std::string_view::npos) return true;
  if (find_word(code, "on_phase") != std::string_view::npos) return true;
  for (std::size_t pos = find_word(code, "phases");
       pos != std::string_view::npos;
       pos = find_word(code, "phases", pos + 1)) {
    std::size_t i = skip_spaces(code, pos + 6);
    if (i >= code.size() || code[i] != '.') continue;
    i = skip_spaces(code, i + 1);
    if (word_at(code, i, "add")) return true;
  }
  return false;
}

/// `phases.us[...] +=` — raw mutation of the breakdown array.
[[nodiscard]] bool has_raw_phase_mutation(std::string_view code) {
  for (std::size_t pos = find_word(code, "phases");
       pos != std::string_view::npos;
       pos = find_word(code, "phases", pos + 1)) {
    std::size_t i = skip_spaces(code, pos + 6);
    if (i >= code.size() || code[i] != '.') continue;
    i = skip_spaces(code, i + 1);
    if (!word_at(code, i, "us")) continue;
    i = skip_spaces(code, i + 2);
    if (i >= code.size() || code[i] != '[') continue;
    const std::size_t close = code.find(']', i);
    if (close == std::string_view::npos) continue;
    const std::size_t after = skip_spaces(code, close + 1);
    if (after + 1 < code.size() && code[after] == '+' &&
        code[after + 1] == '=')
      return true;
  }
  return false;
}

class PhaseAnalyzer final : public Analyzer {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "phase-accounting";
  }
  [[nodiscard]] std::vector<std::string_view> rules() const override {
    return {kRuleUnphasedCharge, kRuleRawPhaseMutation};
  }
  void analyze(const FileContext& context,
               std::vector<Finding>& out) const override {
    // src/obs owns the phase machinery; its internals are the one place
    // raw accumulation is the implementation, not a bypass.
    if (context.rel.rfind("src/obs/", 0) == 0) return;

    const SourceFile& source = *context.source;
    for (std::size_t i = 0; i < source.line_count(); ++i) {
      const std::string_view code = source.code(i);
      if (word_followed_by_plus_equals(code, "time_us")) {
        bool attributed = false;
        for (std::size_t j = i;
             j < source.line_count() && j <= i + kAttributionWindow; ++j) {
          if (has_attribution(source.code(j))) {
            attributed = true;
            break;
          }
        }
        if (!attributed)
          add_finding(out, context, i + 1, kRuleUnphasedCharge,
                      "airtime charge 'time_us +=' with no obs::Phase "
                      "attribution (add_phase / on_phase / phases.add) "
                      "within " +
                          std::to_string(kAttributionWindow) +
                          " lines; every charge must name its phase");
      }
      if (has_raw_phase_mutation(code))
        add_finding(out, context, i + 1, kRuleRawPhaseMutation,
                    "raw mutation of 'phases.us[...]' outside src/obs; go "
                    "through PhaseBreakdown::add (or AirLoop::add_phase, "
                    "which handles the recovery redirect)");
    }
  }
};

}  // namespace

const Analyzer& phase_analyzer() {
  static const PhaseAnalyzer kAnalyzer;
  return kAnalyzer;
}

}  // namespace rfidlint
