// conditional-draw rule fixture: draws nested under data-dependent
// conditionals inside a position-pure region shift the stream position of
// every later draw. Expected conditional-draw findings: lines 19 and 24
// (the armed draw on line 22 is fine).
#include <cstdint>

namespace fixture {

struct Stream {
  std::uint64_t state = 1;
  std::uint64_t operator()() { return state *= 6364136223846793005ull; }
  std::uint64_t below(std::uint64_t bound) { return (*this)() % bound; }
};

// rfidlint: rng-position-pure(fixture-sample)
inline std::uint64_t sample(Stream& fault_rng, bool lost, double p) {
  std::uint64_t penalty = 0;
  if (lost) {
    penalty = fault_rng.below(8);
  }
  if (p > 0.0) {
    penalty += fault_rng.below(2);
  } else {
    penalty += fault_rng.below(4);
  }
  return penalty;
}

}  // namespace fixture
