// wall-clock rule fixture. Expected findings: lines 8 and 12.
#include <chrono>
#include <ctime>

namespace fixture {

inline long now_epoch() {
  return static_cast<long>(time(nullptr));
}

inline long now_chrono() {
  const auto now = std::chrono::system_clock::now();
  return std::chrono::duration_cast<std::chrono::seconds>(
             now.time_since_epoch())
      .count();
}

}  // namespace fixture
