// banned-rng rule fixture. Expected findings: lines 8, 9 and 13.
#include <cstdlib>
#include <random>

namespace fixture {

inline int hidden_global_state() {
  std::srand(42);
  return std::rand();
}

inline unsigned entropy() {
  std::random_device device;
  return device();
}

}  // namespace fixture
