// hotpath-alloc clean fixture: an annotated hot region that only reuses
// preallocated capacity. The identical allocating call outside the region
// (setup) must not be flagged. Expected: clean.
#include <cstdint>
#include <vector>

namespace fixture {

struct Engine {
  std::vector<std::uint64_t> scratch;

  // rfidlint: hotpath(fixture-run)
  std::uint64_t run(std::uint64_t x) {
    std::uint64_t sum = 0;
    for (std::uint64_t& slot : scratch) {
      slot = x;
      sum += slot;
    }
    return sum;
  }

  void setup() { scratch.resize(64); }
};

}  // namespace fixture
