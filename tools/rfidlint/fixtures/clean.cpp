// Passing fixture: seeded named streams, ordered containers, simulated
// time only — plus the patterns that must NOT trip the linter (banned
// tokens inside comments and string literals, membership-only queries).
#include <cstdint>
#include <map>
#include <set>
#include <unordered_set>
#include <vector>

namespace fixture {

struct Stream {
  std::uint64_t state = 1;
  std::uint64_t operator()() { return state *= 6364136223846793005ull; }
};

inline std::uint64_t draw_all() {
  Stream protocol_rng;
  Stream fault_rng_;
  std::uint64_t sum = protocol_rng() + fault_rng_();
  std::map<int, int> ordered;
  ordered[1] = 2;
  for (const auto& [key, value] : ordered)
    sum += static_cast<std::uint64_t>(key + value);
  // Mentioning rand(), time(nullptr), system_clock or iterating an
  // unordered_map in a comment is fine; so is naming them in a string:
  const char* text = "std::rand() time(nullptr) system_clock";
  const char* raw = R"(for (auto& kv : some_unordered_map.begin()))";
  std::unordered_set<int> members;  // membership-only: never iterated
  members.insert(3);
  sum += members.count(3);
  return sum + (text != nullptr) + (raw != nullptr);
}

}  // namespace fixture
