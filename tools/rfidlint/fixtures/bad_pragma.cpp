// Malformed pragmas: unknown rule, missing reason, broken shape. Each is
// itself a bad-pragma finding, and none suppresses the violation it sits
// on. Expected findings: bad-pragma + banned-rng on lines 9, 13 and 17.
#include <cstdlib>

namespace fixture {

inline int unknown_rule() {
  return std::rand();  // rfidlint: allow(no-such-rule) — unknown rule id
}

inline int missing_reason() {
  return std::rand();  // rfidlint: allow(banned-rng)
}

inline int broken_shape() {
  return std::rand();  // rfidlint: allow banned-rng — no parens
}

}  // namespace fixture
