// unnamed-rng-stream rule fixture. Expected findings: lines 16 and 17;
// the named stream on line 18 and the bare declaration on line 14 are fine.
#include <cstdint>

namespace fixture {

struct Stream {
  std::uint64_t state = 1;
  std::uint64_t operator()() { return state *= 6364136223846793005ull; }
  bool bernoulli(double p) { return p > 0 && ((*this)() & 1) != 0; }
};

inline std::uint64_t draw() {
  Stream rng;
  Stream protocol_rng;
  std::uint64_t sum = rng();
  if (rng.bernoulli(0.5)) sum += 1;
  sum += protocol_rng();
  return sum;
}

}  // namespace fixture
