// Allowlist fixture: real violations, every one suppressed by a
// well-formed pragma (inline and standalone forms). Expected: clean.
#include <cstdlib>

namespace fixture {

inline int suppressed_inline() {
  return std::rand();  // rfidlint: allow(banned-rng) — fixture exercises the inline form
}

inline int suppressed_standalone() {
  // rfidlint: allow(banned-rng) — fixture exercises the standalone form
  return std::rand();
}

}  // namespace fixture
