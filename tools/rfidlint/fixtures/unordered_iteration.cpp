// unordered-iteration rule fixture. Expected findings: lines 15 and 17;
// the membership-only query on line 19 must not be flagged.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

inline std::uint64_t walk() {
  std::unordered_map<int, int> counters;
  std::unordered_set<int> members;
  counters[1] = 2;
  members.insert(3);
  std::uint64_t sum = 0;
  for (const auto& [key, value] : counters)
    sum += static_cast<std::uint64_t>(key + value);
  for (auto it = members.begin(); it != members.end(); ++it)
    sum += static_cast<std::uint64_t>(*it);
  return sum + members.count(3);
}

}  // namespace fixture
