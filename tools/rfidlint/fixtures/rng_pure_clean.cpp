// rng-purity clean fixture: a position-pure sampler in the sanctioned
// shapes — same-statement `&&` guards, arm-gate conditionals (`p > 0`,
// `enabled()`), one draw per armed probability. Expected: clean.
#include <cstdint>

namespace fixture {

struct Config {
  double crash_per_tick = 0.0;
  double stall_per_tick = 0.0;
  bool on = false;
  bool enabled() const { return on; }
};

struct Stream {
  std::uint64_t state = 1;
  std::uint64_t operator()() { return state *= 6364136223846793005ull; }
  bool bernoulli(double p) { return p > 0 && ((*this)() & 1) != 0; }
  std::uint64_t below(std::uint64_t bound) { return (*this)() % bound; }
};

// rfidlint: rng-position-pure(fixture-sample)
inline std::uint64_t sample(const Config& config, Stream& fault_rng) {
  if (!config.enabled()) return 0;
  const bool crash = config.crash_per_tick > 0.0 &&
                     fault_rng.bernoulli(config.crash_per_tick);
  std::uint64_t stall_ticks = 0;
  if (config.stall_per_tick > 0.0) {
    // Drawn whenever stalls are armed, even on no-stall ticks.
    stall_ticks = fault_rng.below(8);
  }
  return crash ? stall_ticks : 0;
}

}  // namespace fixture
