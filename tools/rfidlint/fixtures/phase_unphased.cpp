// phase-accounting rule fixture. Expected findings: unphased-charge on
// line 21 (no phase attribution within the window) and raw-phase-mutation
// on line 25 (direct += into the breakdown array outside src/obs).
#include <cstdint>

namespace fixture {

struct Breakdown {
  std::uint64_t us[6] = {0, 0, 0, 0, 0, 0};
};

struct Metrics {
  std::uint64_t time_us = 0;
  Breakdown phases;
};

struct Loop {
  Metrics metrics;

  void charge_without_phase(std::uint64_t dt) {
    metrics.time_us += dt;
  }

  void mutate_breakdown(std::uint64_t dt) {
    metrics.phases.us[2] += dt;
  }
};

}  // namespace fixture
