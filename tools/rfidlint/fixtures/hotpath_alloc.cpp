// hotpath-alloc rule fixture: one allocating construct per category inside
// an annotated region. Expected hotpath-alloc findings: lines 17, 18, 19,
// 20 and 21; the justified reserve on line 22 is suppressed by its pragma
// and the identical call outside the region (line 26) is not flagged.
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace fixture {

struct Engine {
  std::vector<std::uint64_t> scratch;

  // rfidlint: hotpath(fixture-run)
  std::uint64_t run(std::uint64_t x) {
    scratch.push_back(x);
    const std::uint64_t* owned = new std::uint64_t(x);
    const std::string label = std::to_string(x);
    const std::function<std::uint64_t()> thunk = [x] { return x; };
    scratch.insert(scratch.end(), x);
    scratch.reserve(64);  // rfidlint: allow(hotpath-alloc) — fixture exercises the justified form
    return *owned + label.size() + thunk();
  }

  void setup() { scratch.reserve(64); }
};

}  // namespace fixture
