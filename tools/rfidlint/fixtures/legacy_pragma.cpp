// Legacy-prefix fixture: a well-formed pragma spelled with the deprecated
// `detlint:` prefix still suppresses its rule but earns a legacy-pragma
// warning. Expected: one legacy-pragma warning on line 10, no banned-rng,
// and an exit code of 0 (warnings do not fail the run).
#include <cstdlib>

namespace fixture {

inline int suppressed_with_old_spelling() {
  return std::rand();  // detlint: allow(banned-rng) — fixture exercises the legacy prefix
}

}  // namespace fixture
