// phase-accounting clean fixture: every airtime charge names its phase
// within the attribution window (same line, next line, or via the
// PhaseBreakdown::add spelling). Expected: clean.
#include <cstdint>

namespace fixture {

struct Breakdown {
  void add(int phase, std::uint64_t us) { total += us * (phase >= 0); }
  std::uint64_t total = 0;
};

struct Metrics {
  std::uint64_t time_us = 0;
  Breakdown phases;
};

struct Loop {
  Metrics metrics;

  void add_phase(int phase, std::uint64_t us) { metrics.phases.add(phase, us); }

  void charge_same_line(std::uint64_t dt) {
    metrics.time_us += dt;
    add_phase(1, dt);
  }

  void charge_next_line(std::uint64_t dt) {
    metrics.time_us += dt;
    // Multi-line call formatting still lands in the window:
    metrics.phases.add(2, dt);
  }
};

}  // namespace fixture
