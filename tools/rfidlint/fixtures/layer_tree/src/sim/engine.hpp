// Clean: sim declares common as a dep, so this downward edge is fine.
#pragma once

#include "common/ok.hpp"

namespace fixture::sim {
inline int spin() { return static_cast<int>(fixture::common::kAnswer); }
}  // namespace fixture::sim
