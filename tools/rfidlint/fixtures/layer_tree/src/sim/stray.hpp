// Include into a layer the spec does not declare.
// Expected: undeclared-layer on line 5.
#pragma once

#include "widgets/widget.hpp"

namespace fixture::sim {
inline int stray() { return fixture::widgets::make(); }
}  // namespace fixture::sim
