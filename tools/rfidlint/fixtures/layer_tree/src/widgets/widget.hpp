// A file living in a layer the spec does not declare.
// Expected: undeclared-layer on line 1.
#pragma once

namespace fixture::widgets {
inline int make() { return 7; }
}  // namespace fixture::widgets
