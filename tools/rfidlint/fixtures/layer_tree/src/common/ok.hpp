// Clean: common depends on nothing; system headers carry no layer edge.
#pragma once

#include <cstdint>

namespace fixture::common {
inline constexpr std::uint32_t kAnswer = 42;
}  // namespace fixture::common
