// The artificial upward include: common may not reach into sim.
// Expected: layer-violation on line 5.
#pragma once

#include "sim/engine.hpp"

namespace fixture::common {
inline int uses_engine() { return fixture::sim::spin(); }
}  // namespace fixture::common
