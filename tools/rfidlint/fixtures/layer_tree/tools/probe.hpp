// Clean: tools is a top scope and may include from any layer.
#pragma once

#include "common/ok.hpp"
#include "sim/engine.hpp"

namespace fixture::tools {
inline int probe() { return fixture::sim::spin(); }
}  // namespace fixture::tools
