#include "rfidlint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace rfidlint {

namespace {

constexpr std::string_view kRuleBadPragma = "bad-pragma";
constexpr std::string_view kRuleLegacyPragma = "legacy-pragma";

[[nodiscard]] std::vector<std::string> split_words(std::string_view text) {
  std::vector<std::string> words;
  std::size_t i = 0;
  while (i < text.size()) {
    i = skip_spaces(text, i);
    const std::size_t begin = i;
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])) == 0)
      ++i;
    if (i > begin) words.emplace_back(text.substr(begin, i - begin));
  }
  return words;
}

/// The suppression table and the findings the framework itself owns
/// (pragma hygiene, legacy-prefix warnings, region resolution).
struct DirectivePass final {
  std::vector<Finding> findings;
  /// suppressed[i] holds the rule ids allowed on line i+1.
  std::vector<std::vector<std::string>> suppressed;
};

[[nodiscard]] DirectivePass run_directive_pass(FileContext& context) {
  const SourceFile& source = *context.source;
  DirectivePass pass;
  pass.suppressed.resize(source.line_count());

  for (const Directive& directive : source.directives()) {
    const std::string prefix = directive.legacy ? "detlint" : "rfidlint";
    if (directive.kind == Directive::Kind::kMalformed) {
      add_finding(pass.findings, context, directive.line, kRuleBadPragma,
                  "malformed " + prefix + " pragma (" + directive.problem +
                      "); expected 'rfidlint: allow(<rule>) — reason', "
                      "'rfidlint: hotpath(<name>)' or "
                      "'rfidlint: rng-position-pure(<name>)'");
      continue;
    }
    if (directive.kind == Directive::Kind::kAllow) {
      const auto& ids = rule_ids();
      if (std::find(ids.begin(), ids.end(), directive.argument) ==
          ids.end()) {
        add_finding(pass.findings, context, directive.line, kRuleBadPragma,
                    "unknown rule '" + directive.argument + "' in " + prefix +
                        " pragma");
        continue;
      }
      if (!directive.has_reason) {
        add_finding(pass.findings, context, directive.line, kRuleBadPragma,
                    prefix + " pragma for '" + directive.argument +
                        "' has no reason; write 'rfidlint: allow(" +
                        directive.argument + ") — why'");
        continue;
      }
      if (directive.legacy)
        add_finding(pass.findings, context, directive.line, kRuleLegacyPragma,
                    "pragma uses the deprecated 'detlint:' prefix; spell it "
                    "'rfidlint: allow(" +
                        directive.argument + ") — reason'",
                    Severity::kWarning);
      // Inline pragma suppresses its own line; a standalone comment line
      // suppresses the next line that carries code.
      std::size_t target = directive.line - 1;
      if (source.code_empty(target)) {
        ++target;
        while (target < source.line_count() && source.code_empty(target))
          ++target;
      }
      if (target < source.line_count())
        pass.suppressed[target].push_back(directive.argument);
      continue;
    }
    // Region markers attach to the brace block (function body) that opens
    // within a few lines of the directive.
    const bool hotpath = directive.kind == Directive::Kind::kHotpath;
    const std::optional<Region> body = next_brace_block(source, directive.line);
    if (!body) {
      add_finding(pass.findings, context, directive.line, kRuleBadPragma,
                  std::string(hotpath ? "hotpath" : "rng-position-pure") +
                      "(" + directive.argument +
                      ") marker precedes no brace block; place it on or "
                      "just above the function it annotates");
      continue;
    }
    AnnotatedRegion region{directive.argument, *body, directive.line};
    (hotpath ? context.hotpaths : context.rng_pure)
        .push_back(std::move(region));
  }
  return pass;
}

}  // namespace

void add_finding(std::vector<Finding>& findings, const FileContext& context,
                 std::size_t line, std::string_view rule, std::string message,
                 Severity severity) {
  findings.push_back(Finding{context.source->path(), line, std::string(rule),
                             std::move(message), severity});
}

LayerSpec parse_layer_spec(std::string_view content) {
  LayerSpec spec;
  std::size_t start = 0;
  std::size_t line_no = 0;
  while (start <= content.size()) {
    const std::size_t end = content.find('\n', start);
    std::string_view line =
        content.substr(start, end == std::string_view::npos
                                  ? std::string_view::npos
                                  : end - start);
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);

    const std::vector<std::string> words = split_words(line);
    if (!words.empty()) {
      if (words[0] == "top") {
        if (words.size() != 2) {
          spec.errors.push_back(
              {line_no, "'top' takes exactly one scope name"});
        } else if (!spec.tops.insert(words[1]).second) {
          spec.errors.push_back(
              {line_no, "duplicate top scope '" + words[1] + "'"});
        }
      } else if (words[0] == "layer") {
        if (words.size() < 2 || words[1].back() != ':' ||
            words[1].size() == 1) {
          spec.errors.push_back(
              {line_no, "expected 'layer <name>: <deps...>'"});
        } else {
          const std::string name = words[1].substr(0, words[1].size() - 1);
          if (spec.declares(name)) {
            spec.errors.push_back(
                {line_no, "duplicate layer '" + name + "'"});
          } else {
            std::set<std::string> closure{name};
            bool deps_ok = true;
            for (std::size_t i = 2; i < words.size(); ++i) {
              const auto it = spec.allowed.find(words[i]);
              if (it == spec.allowed.end()) {
                // Declaration order is the topological order: a dep that
                // has not appeared yet is either unknown or an upward
                // edge, and both are spec bugs.
                spec.errors.push_back(
                    {line_no, "layer '" + name + "' depends on '" +
                                  words[i] +
                                  "' which is not declared above it"});
                deps_ok = false;
                continue;
              }
              closure.insert(it->second.begin(), it->second.end());
            }
            if (deps_ok) {
              spec.order.push_back(name);
              spec.allowed.emplace(name, std::move(closure));
            }
          }
        }
      } else {
        spec.errors.push_back(
            {line_no, "unknown keyword '" + words[0] +
                          "'; expected 'layer' or 'top'"});
      }
    }
    if (end == std::string_view::npos) break;
    start = end + 1;
  }
  if (spec.order.empty() && spec.errors.empty())
    spec.errors.push_back({0, "layer spec declares no layers"});
  return spec;
}

LayerSpec load_layer_spec(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    LayerSpec spec;
    spec.errors.push_back({0, "cannot read layer spec '" + path + "'"});
    return spec;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_layer_spec(buffer.str());
}

const std::vector<const Analyzer*>& analyzers() {
  static const std::vector<const Analyzer*> kAnalyzers = {
      &determinism_analyzer(), &layer_analyzer(), &hotpath_analyzer(),
      &rng_purity_analyzer(), &phase_analyzer()};
  return kAnalyzers;
}

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> kIds = [] {
    // detlint-era order first so the pragma vocabulary is a superset of
    // the old tool's, then the framework rules, then per-analyzer rules
    // not already listed.
    std::vector<std::string> ids = {"wall-clock", "banned-rng",
                                    "unordered-iteration",
                                    "unnamed-rng-stream",
                                    std::string(kRuleBadPragma),
                                    std::string(kRuleLegacyPragma)};
    for (const Analyzer* analyzer : analyzers()) {
      for (const std::string_view rule : analyzer->rules()) {
        if (std::find(ids.begin(), ids.end(), rule) == ids.end())
          ids.emplace_back(rule);
      }
    }
    return ids;
  }();
  return kIds;
}

std::vector<Finding> lint_source(const std::string& file,
                                 std::string_view content,
                                 const Options& options,
                                 std::string_view rel) {
  const SourceFile source(file, content);
  FileContext context;
  context.source = &source;
  context.rel = rel.empty() ? file : std::string(rel);
  context.options = &options;

  DirectivePass pass = run_directive_pass(context);
  std::vector<Finding> findings = std::move(pass.findings);

  std::vector<Finding> raw;
  for (const Analyzer* analyzer : analyzers()) {
    if (!options.analyzers.empty() &&
        std::find(options.analyzers.begin(), options.analyzers.end(),
                  analyzer->name()) == options.analyzers.end())
      continue;
    analyzer->analyze(context, raw);
  }
  for (Finding& finding : raw) {
    const auto& allowed = pass.suppressed[finding.line - 1];
    if (std::find(allowed.begin(), allowed.end(), finding.rule) !=
        allowed.end())
      continue;
    findings.push_back(std::move(finding));
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::vector<Finding> lint_file(const std::string& path, const Options& options,
                               std::string_view rel) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {Finding{path, 0, "io-error", "cannot read file",
                    Severity::kError}};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return lint_source(path, buffer.str(), options, rel);
}

std::vector<std::string> collect_sources(const std::string& root) {
  std::vector<std::string> files;
  namespace fs = std::filesystem;
  if (!fs::exists(root)) return files;
  for (const fs::directory_entry& entry :
       fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc")
      files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

bool has_errors(const std::vector<Finding>& findings) {
  return std::any_of(findings.begin(), findings.end(), [](const Finding& f) {
    return f.severity == Severity::kError;
  });
}

std::string to_string(const Finding& finding) {
  const char* marker =
      finding.severity == Severity::kWarning ? " warning:" : "";
  return finding.file + ":" + std::to_string(finding.line) + ": [" +
         finding.rule + "]" + marker + " " + finding.message;
}

}  // namespace rfidlint
