// rfidlint CLI.
//
//   rfidlint [--root <repo-root>] [--layers <spec>|--no-layers]
//            [--analyzers <a,b,...>] [files...]
//   rfidlint --list-rules | --list-analyzers
//
// With no file arguments, lints every .hpp/.cpp under <root>/src and
// <root>/tools/simserved (the simulator sources and the serving daemon;
// tests, bench and examples are out of scope — they may stamp wall-clock
// manifests). With explicit file arguments it lints exactly those files,
// which is how the fixture self-check drives it. Paths are made
// repo-relative against <root> for the path-scoped rules (layer
// membership, the src/obs exemption).
//
// The layer spec defaults to <root>/tools/rfidlint/layers.spec; parse
// errors are reported as [layer-spec] findings and fail the run.
// Exit status: 0 when clean (warnings allowed), 1 when any error-severity
// finding, 2 on usage error.
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "rfidlint.hpp"

namespace {

/// `path` relative to `root`, '/'-separated, or `path` unchanged when it
/// does not live under `root`.
[[nodiscard]] std::string relative_to(const std::string& path,
                                      const std::string& root) {
  std::string rel = path;
  if (root != "." && rel.rfind(root, 0) == 0 && rel.size() > root.size() &&
      rel[root.size()] == '/')
    rel = rel.substr(root.size() + 1);
  else if (rel.rfind("./", 0) == 0)
    rel = rel.substr(2);
  return rel;
}

[[nodiscard]] std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item = csv.substr(
        start, comma == std::string::npos ? std::string::npos
                                          : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string layers_path;
  bool no_layers = false;
  rfidlint::Options options;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "rfidlint: --root needs a directory\n";
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--layers") {
      if (i + 1 >= argc) {
        std::cerr << "rfidlint: --layers needs a spec file\n";
        return 2;
      }
      layers_path = argv[++i];
    } else if (arg == "--no-layers") {
      no_layers = true;
    } else if (arg == "--analyzers") {
      if (i + 1 >= argc) {
        std::cerr << "rfidlint: --analyzers needs a comma-separated list\n";
        return 2;
      }
      options.analyzers = split_csv(argv[++i]);
    } else if (arg == "--list-rules") {
      for (const std::string& rule : rfidlint::rule_ids())
        std::cout << rule << "\n";
      return 0;
    } else if (arg == "--list-analyzers") {
      for (const rfidlint::Analyzer* analyzer : rfidlint::analyzers())
        std::cout << analyzer->name() << "\n";
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout
          << "usage: rfidlint [--root <repo-root>] [--layers <spec>]\n"
             "                [--no-layers] [--analyzers <a,b,...>] "
             "[files...]\n"
             "       rfidlint --list-rules | --list-analyzers\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "rfidlint: unknown option " << arg << "\n";
      return 2;
    } else {
      files.push_back(arg);
    }
  }

  for (const std::string& name : options.analyzers) {
    bool known = false;
    for (const rfidlint::Analyzer* analyzer : rfidlint::analyzers())
      known = known || analyzer->name() == name;
    if (!known) {
      std::cerr << "rfidlint: unknown analyzer '" << name << "'\n";
      return 2;
    }
  }

  rfidlint::LayerSpec spec;
  if (!no_layers) {
    if (layers_path.empty()) layers_path = root + "/tools/rfidlint/layers.spec";
    spec = rfidlint::load_layer_spec(layers_path);
    if (!spec.ok()) {
      for (const rfidlint::SpecError& error : spec.errors)
        std::cout << layers_path << ":" << error.line
                  << ": [layer-spec] " << error.message << "\n";
      std::cout << "rfidlint: layer spec is invalid\n";
      return 1;
    }
    options.layers = &spec;
  }

  if (files.empty()) {
    files = rfidlint::collect_sources(root + "/src");
    const std::vector<std::string> simserved =
        rfidlint::collect_sources(root + "/tools/simserved");
    files.insert(files.end(), simserved.begin(), simserved.end());
    if (files.empty()) {
      std::cerr << "rfidlint: no sources under " << root << "/src\n";
      return 2;
    }
  }

  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (const std::string& file : files) {
    const std::string rel = relative_to(file, root);
    for (const rfidlint::Finding& finding :
         rfidlint::lint_file(file, options, rel)) {
      std::cout << rfidlint::to_string(finding) << "\n";
      if (finding.severity == rfidlint::Severity::kError)
        ++errors;
      else
        ++warnings;
    }
  }
  if (warnings > 0)
    std::cout << "rfidlint: " << warnings << " warning"
              << (warnings == 1 ? "" : "s") << "\n";
  if (errors > 0) {
    std::cout << "rfidlint: " << errors << " finding"
              << (errors == 1 ? "" : "s") << " in " << files.size()
              << " file" << (files.size() == 1 ? "" : "s") << "\n";
    return 1;
  }
  std::cout << "rfidlint: clean (" << files.size() << " files)\n";
  return 0;
}
