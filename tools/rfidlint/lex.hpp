// rfidlint's shared lexing layer.
//
// Every analyzer consumes the same token-level view of a translation unit:
// one SourceFile per input, each physical line split once into a code part
// (comments, string/char literals and raw strings blanked with spaces;
// preprocessor lines fully blanked) and a comment part (where the pragma
// directives live). The splitter is the comment/string/raw-string/
// preprocessor-aware scanner grown in tools/detlint; rfidlint hoists it
// here so the five analyzers and the framework driver share one tokenizer
// instead of five ad-hoc ones.
//
// Directive grammar (parsed out of comment text, anchored: the prefix
// must be the comment's first non-space content, so prose mentioning a
// pragma spelling is inert; the legacy `detlint:` prefix is accepted for
// `allow` with a compatibility warning):
//
//   <prefix>: allow(<rule>) <separator> <reason>     suppression
//   rfidlint: hotpath(<name>)                        hot-path region marker
//   rfidlint: rng-position-pure(<name>)              RNG-purity region marker
//
// where <prefix> is `rfidlint` or (allow only) `detlint`. A suppression
// with no reason, an unknown directive verb, or a broken argument list is
// kept as a kMalformed directive so the framework can turn it into a
// bad-pragma finding — suppressions must not rot silently.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rfidlint {

[[nodiscard]] bool is_word(char c);

/// True when `text[pos..pos+word.size())` equals `word` and both sides are
/// word boundaries.
[[nodiscard]] bool word_at(std::string_view text, std::size_t pos,
                           std::string_view word);

/// First word-boundary occurrence of `word` in `text` at or after `from`,
/// or npos.
[[nodiscard]] std::size_t find_word(std::string_view text,
                                    std::string_view word,
                                    std::size_t from = 0);

[[nodiscard]] std::size_t skip_spaces(std::string_view text, std::size_t pos);

/// Position of the last non-space character before `pos`, or npos.
[[nodiscard]] std::size_t rskip_spaces(std::string_view text,
                                       std::size_t pos);

/// One physical source line, split into the code part and the comment text.
struct SplitLine final {
  std::string code;
  std::string comment;
};

/// Comment/string-aware splitter. Tracks block comments and raw string
/// literals across lines; ordinary string/char literals never span lines.
class LineSplitter final {
 public:
  [[nodiscard]] SplitLine split(std::string_view line);

 private:
  bool in_block_comment_ = false;
  bool in_raw_string_ = false;
  std::string raw_delimiter_;
};

/// One parsed `rfidlint:` / `detlint:` directive.
struct Directive final {
  enum class Kind {
    kAllow,            ///< allow(<rule>) — reason
    kHotpath,          ///< hotpath(<name>) region marker
    kRngPositionPure,  ///< rng-position-pure(<name>) region marker
    kMalformed,        ///< anything the grammar above rejects
  };
  Kind kind = Kind::kMalformed;
  std::string argument;     ///< rule id (allow) or region name (markers)
  bool has_reason = false;  ///< allow only: word characters after the ')'
  bool legacy = false;      ///< spelled with the old `detlint:` prefix
  std::size_t line = 0;     ///< 1-based
  std::string problem;      ///< kMalformed: what exactly is wrong
};

/// Parses every directive out of one line's comment text, in order of
/// appearance.
[[nodiscard]] std::vector<Directive> parse_directives(
    std::string_view comment, std::size_t line);

/// A translation unit split once and shared by every analyzer.
class SourceFile final {
 public:
  SourceFile(std::string path, std::string_view content);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::size_t line_count() const noexcept {
    return lines_.size();
  }
  /// 0-based accessors; `line_no` variants below are 1-based.
  [[nodiscard]] const std::string& raw(std::size_t i) const {
    return raw_[i];
  }
  [[nodiscard]] std::string_view code(std::size_t i) const {
    return lines_[i].code;
  }
  [[nodiscard]] std::string_view comment(std::size_t i) const {
    return lines_[i].comment;
  }
  /// True when the code part of line `i` (0-based) is all whitespace.
  [[nodiscard]] bool code_empty(std::size_t i) const;
  [[nodiscard]] const std::vector<Directive>& directives() const noexcept {
    return directives_;
  }

 private:
  std::string path_;
  std::vector<std::string> raw_;
  std::vector<SplitLine> lines_;
  std::vector<Directive> directives_;
};

/// A brace-delimited region, 1-based inclusive line numbers.
struct Region final {
  std::size_t begin_line = 0;  ///< line holding the opening '{'
  std::size_t end_line = 0;    ///< line holding the matching '}'
};

/// The first `{ ... }` block whose opening brace appears within
/// `max_scan_lines` of `from_line` (1-based). Used to attach region
/// directives to the function body that follows them. Returns nullopt when
/// no block opens in the window or the braces never close.
[[nodiscard]] std::optional<Region> next_brace_block(
    const SourceFile& source, std::size_t from_line,
    std::size_t max_scan_lines = 10);

}  // namespace rfidlint
