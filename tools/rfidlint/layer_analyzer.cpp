// layer-graph analyzer: machine-enforces the CMake layering order. Every
// quoted #include in src/ is rooted at src/ (the only include dir), so the
// first path component of the target names its layer; the edge must be in
// the declared DAG's reflexive-transitive closure. Scopes declared `top`
// in the spec (tools, tests, bench, examples) sit above all layers and may
// include anything.
#include <string>
#include <vector>

#include "rfidlint.hpp"

namespace rfidlint {

namespace {

constexpr std::string_view kRuleLayerViolation = "layer-violation";
constexpr std::string_view kRuleUndeclaredLayer = "undeclared-layer";

/// First '/'-separated component of `path`, or empty when there is none
/// (a same-directory include carries no layer information).
[[nodiscard]] std::string_view first_component(std::string_view path) {
  const std::size_t slash = path.find('/');
  if (slash == std::string_view::npos) return {};
  return path.substr(0, slash);
}

/// The `"target"` of an `#include "target"` directive, read off the raw
/// line (the splitter blanks preprocessor lines in the code view).
/// Angle-bracket includes are system headers and carry no layer edge.
[[nodiscard]] std::string_view include_target(std::string_view raw) {
  std::size_t i = skip_spaces(raw, 0);
  if (i >= raw.size() || raw[i] != '#') return {};
  i = skip_spaces(raw, i + 1);
  if (!word_at(raw, i, "include")) return {};
  i = skip_spaces(raw, i + 7);
  if (i >= raw.size() || raw[i] != '"') return {};
  const std::size_t close = raw.find('"', i + 1);
  if (close == std::string_view::npos) return {};
  return raw.substr(i + 1, close - i - 1);
}

class LayerAnalyzer final : public Analyzer {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "layer-graph";
  }
  [[nodiscard]] std::vector<std::string_view> rules() const override {
    return {kRuleLayerViolation, kRuleUndeclaredLayer, "layer-spec"};
  }
  void analyze(const FileContext& context,
               std::vector<Finding>& out) const override {
    const LayerSpec* spec = context.options->layers;
    if (spec == nullptr || !spec->ok()) return;

    const std::string_view rel = context.rel;
    const std::string_view scope = first_component(rel);
    if (spec->tops.count(std::string(scope)) != 0) return;  // above all
    if (scope != "src") return;  // outside the layered tree

    const std::string layer(
        first_component(rel.substr(std::string_view("src/").size())));
    if (layer.empty()) return;  // file directly under src/
    if (!spec->declares(layer)) {
      add_finding(out, context, 1, kRuleUndeclaredLayer,
                  "file lives in layer '" + layer +
                      "' which the layer spec does not declare");
      return;
    }

    const SourceFile& source = *context.source;
    for (std::size_t i = 0; i < source.line_count(); ++i) {
      const std::string_view target = include_target(source.raw(i));
      if (target.empty()) continue;
      const std::string to(first_component(target));
      if (to.empty() || to == layer) continue;
      if (!spec->declares(to)) {
        add_finding(out, context, i + 1, kRuleUndeclaredLayer,
                    "include of '" + std::string(target) +
                        "' targets layer '" + to +
                        "' which the layer spec does not declare");
      } else if (!spec->allows(layer, to)) {
        add_finding(out, context, i + 1, kRuleLayerViolation,
                    "layer '" + layer + "' may not include from layer '" +
                        to + "' (edge not in the declared DAG); include '" +
                        std::string(target) + "' breaks the layering");
      }
    }
  }
};

}  // namespace

const Analyzer& layer_analyzer() {
  static const LayerAnalyzer kAnalyzer;
  return kAnalyzer;
}

}  // namespace rfidlint
