// Analyzer 0: the detlint-era determinism rules that do not involve RNG
// streams (those moved to the rng-purity analyzer). The simulator's ground
// truth is byte-identical seeded output; wall time and hash-order iteration
// are the two ways host state leaks into results.
#include <algorithm>
#include <string>
#include <vector>

#include "rfidlint.hpp"

namespace rfidlint {

namespace {

constexpr std::string_view kRuleWallClock = "wall-clock";
constexpr std::string_view kRuleUnorderedIteration = "unordered-iteration";

/// Names declared with an unordered container type in this file, found by
/// bracket-matching `unordered_map<...>` / `unordered_set<...>` and
/// reading the declarator that follows. Function declarations (identifier
/// followed by `(`) are skipped: a factory *returning* a hash container is
/// not an iteration hazard at its declaration site.
[[nodiscard]] std::vector<std::string> unordered_names(
    std::string_view code) {
  std::vector<std::string> names;
  for (const std::string_view container :
       {std::string_view("unordered_map"), std::string_view("unordered_set"),
        std::string_view("unordered_multimap"),
        std::string_view("unordered_multiset")}) {
    for (std::size_t pos = find_word(code, container);
         pos != std::string_view::npos;
         pos = find_word(code, container, pos + 1)) {
      std::size_t i = skip_spaces(code, pos + container.size());
      if (i >= code.size() || code[i] != '<') continue;
      int depth = 0;
      while (i < code.size()) {
        if (code[i] == '<') ++depth;
        if (code[i] == '>') {
          --depth;
          if (depth == 0) break;
        }
        ++i;
      }
      if (i >= code.size()) continue;
      ++i;  // past the closing '>'
      // Skip reference/pointer declarators and whitespace.
      i = skip_spaces(code, i);
      while (i < code.size() && (code[i] == '&' || code[i] == '*'))
        i = skip_spaces(code, i + 1);
      const std::size_t begin = i;
      while (i < code.size() && is_word(code[i])) ++i;
      if (i == begin) continue;  // temporary / using-alias / return type
      const std::size_t next = skip_spaces(code, i);
      if (next < code.size() && code[next] == '(') continue;  // function
      names.emplace_back(code.substr(begin, i - begin));
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

/// wall-clock: any wall-time source. The simulated clock
/// (obs::Metrics::time_us) is the only clock results may depend on.
void check_wall_clock(std::vector<Finding>& findings,
                      const FileContext& context, std::size_t line_no,
                      std::string_view code) {
  for (const std::string_view token :
       {std::string_view("system_clock"), std::string_view("gettimeofday"),
        std::string_view("localtime"), std::string_view("strftime")}) {
    if (find_word(code, token) != std::string_view::npos)
      add_finding(findings, context, line_no, kRuleWallClock,
                  "wall-clock source '" + std::string(token) +
                      "' in simulator code; results must depend only on "
                      "the simulated clock");
  }
  // time(nullptr) / time(NULL) / time(0)
  for (std::size_t pos = find_word(code, "time");
       pos != std::string_view::npos; pos = find_word(code, "time", pos + 1)) {
    std::size_t i = skip_spaces(code, pos + 4);
    if (i >= code.size() || code[i] != '(') continue;
    i = skip_spaces(code, i + 1);
    for (const std::string_view arg :
         {std::string_view("nullptr"), std::string_view("NULL"),
          std::string_view("0")}) {
      if (word_at(code, i, arg) &&
          skip_spaces(code, i + arg.size()) < code.size() &&
          code[skip_spaces(code, i + arg.size())] == ')') {
        add_finding(findings, context, line_no, kRuleWallClock,
                    "wall-clock call 'time(" + std::string(arg) +
                        ")' in simulator code");
        break;
      }
    }
  }
}

/// unordered-iteration: walking a hash container declared in this file.
void check_unordered_iteration(std::vector<Finding>& findings,
                               const FileContext& context,
                               std::size_t line_no, std::string_view code,
                               const std::vector<std::string>& names) {
  for (const std::string& name : names) {
    for (std::size_t pos = find_word(code, name);
         pos != std::string_view::npos;
         pos = find_word(code, name, pos + 1)) {
      // Range-for: `for (... : name)` — the name is preceded by a lone
      // ':' (not '::').
      const std::size_t before = rskip_spaces(code, pos);
      const bool range_for = before != std::string_view::npos &&
                             code[before] == ':' &&
                             (before == 0 || code[before - 1] != ':');
      // Iterator walk: `name.begin()` and friends.
      std::size_t after = skip_spaces(code, pos + name.size());
      bool begin_call = false;
      if (after < code.size() && code[after] == '.') {
        after = skip_spaces(code, after + 1);
        for (const std::string_view it :
             {std::string_view("begin"), std::string_view("cbegin"),
              std::string_view("rbegin"), std::string_view("crbegin")}) {
          if (word_at(code, after, it)) begin_call = true;
        }
      }
      if (range_for || begin_call)
        add_finding(findings, context, line_no, kRuleUnorderedIteration,
                    "iteration over unordered container '" + name +
                        "': hash order is implementation-defined; use an "
                        "ordered container or sort first");
    }
  }
}

class DeterminismAnalyzer final : public Analyzer {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "determinism";
  }
  [[nodiscard]] std::vector<std::string_view> rules() const override {
    return {kRuleWallClock, kRuleUnorderedIteration};
  }
  void analyze(const FileContext& context,
               std::vector<Finding>& out) const override {
    const SourceFile& source = *context.source;
    std::string all_code;
    for (std::size_t i = 0; i < source.line_count(); ++i) {
      all_code += source.code(i);
      all_code += '\n';
    }
    const std::vector<std::string> names = unordered_names(all_code);
    for (std::size_t i = 0; i < source.line_count(); ++i) {
      check_wall_clock(out, context, i + 1, source.code(i));
      check_unordered_iteration(out, context, i + 1, source.code(i), names);
    }
  }
};

}  // namespace

const Analyzer& determinism_analyzer() {
  static const DeterminismAnalyzer kAnalyzer;
  return kAnalyzer;
}

}  // namespace rfidlint
