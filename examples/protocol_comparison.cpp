// Command-line protocol comparison: averaged metrics for any subset of
// protocols on a configurable workload.
//
//   protocol_comparison [n] [info_bits] [trials] [protocol...]
//                       [--report-json PATH] [--fault]
//
//   ./protocol_comparison                      # defaults: 10000 1 5, all
//   ./protocol_comparison 50000 16 10 TPP MIC  # custom workload & subset
//   ./protocol_comparison --fault              # canned corrupt channel:
//     Gilbert–Elliott reply loss + downlink BER 0.005 + CRC framing +
//     bounded recovery, over the hash-polling family (HPP EHPP TPP ADAPT)
//
// RFID_THREADS=k runs the trials on a k-worker pool; results are
// bit-identical to the serial run (the CI determinism gate relies on it).
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/env.hpp"
#include "common/table.hpp"
#include "core/polling.hpp"
#include "parallel/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace rfid;

  std::size_t n = 10000;
  std::size_t info_bits = 1;
  std::size_t trials = 5;
  bool fault = false;
  std::vector<core::ProtocolKind> kinds;
  std::string report_json_path;

  const auto usage = [&] {
    std::cerr << "usage: " << argv[0]
              << " [n] [info_bits] [trials] [protocol...]"
                 " [--report-json PATH] [--fault]\n  protocols: ";
    for (const auto kind : protocols::all_protocols())
      std::cerr << protocols::to_string(kind) << ' ';
    std::cerr << '\n';
    return EXIT_FAILURE;
  };

  // Strip flag arguments first; the remaining ones keep their positional
  // semantics.
  std::vector<char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--report-json") {
      if (i + 1 >= argc) {
        std::cerr << "--report-json needs a path\n";
        return usage();
      }
      report_json_path = argv[++i];
      continue;
    }
    if (std::string_view(argv[i]) == "--fault") {
      fault = true;
      continue;
    }
    positional.push_back(argv[i]);
  }

  std::size_t arg = 0;
  // The three leading numeric arguments are positional; the first
  // non-numeric argument starts the protocol list. parse_size_arg is
  // strict: trailing garbage, overflow, and a zero workload are all
  // rejected instead of silently running a degenerate comparison.
  for (auto* slot : {&n, &info_bits, &trials}) {
    if (arg < positional.size() &&
        std::isdigit(static_cast<unsigned char>(*positional[arg]))) {
      const auto parsed = parse_size_arg(positional[arg]);
      if (!parsed) {
        std::cerr << "bad numeric argument: " << positional[arg] << '\n';
        return usage();
      }
      *slot = *parsed;
      ++arg;
    }
  }
  for (; arg < positional.size(); ++arg) {
    const auto kind = protocols::parse_protocol(positional[arg]);
    if (!kind) {
      std::cerr << "unknown protocol: " << positional[arg] << '\n';
      return usage();
    }
    kinds.push_back(*kind);
  }
  if (kinds.empty()) {
    if (fault) {
      // The canned fault scenario exercises the corruption-resilient
      // downlink, which only the hash-polling family implements.
      kinds = {core::ProtocolKind::kHpp, core::ProtocolKind::kEhpp,
               core::ProtocolKind::kTpp, core::ProtocolKind::kAdaptive};
    } else {
      kinds.assign(protocols::all_protocols().begin(),
                   protocols::all_protocols().end());
    }
  }

  std::cout << "Comparing " << kinds.size() << " protocol(s): n = " << n
            << ", info bits = " << info_bits << ", trials = " << trials
            << "\n\n";

  // RFID_THREADS=k fans the trials out over a k-worker pool; unset or 0
  // runs serially. Either way the rows are bit-identical (seed-derived
  // per-trial RNG streams), which the CI determinism gate verifies.
  const std::uint64_t threads = env_u64("RFID_THREADS", 0);
  std::unique_ptr<parallel::ThreadPool> pool;
  if (threads > 0)
    pool = std::make_unique<parallel::ThreadPool>(
        static_cast<unsigned>(threads));

  constexpr std::uint64_t kMasterSeed = 42;
  const sim::SessionConfig base_session =
      fault ? core::fault_comparison_session() : sim::SessionConfig{};
  const auto rows = core::compare_protocols(kinds, n, info_bits, trials,
                                            kMasterSeed, pool.get(),
                                            base_session);

  if (!report_json_path.empty()) {
    std::ofstream out(report_json_path);
    if (!out) {
      std::cerr << "cannot open " << report_json_path << " for writing\n";
      return EXIT_FAILURE;
    }
    core::write_comparison_json(out, rows,
                                {n, info_bits, trials, kMasterSeed});
  }

  TablePrinter table({"protocol", "avg vector bits", "time (s)",
                      "95% CI (s)", "x lower bound"});
  const double bound = rows.back().avg_time_s;
  for (const core::ComparisonRow& row : rows) {
    table.add_row({row.protocol, TablePrinter::num(row.avg_vector_bits),
                   TablePrinter::num(row.avg_time_s, 3),
                   "\xC2\xB1" + TablePrinter::num(row.ci95_time_s, 3),
                   TablePrinter::num(row.avg_time_s / bound, 2)});
  }
  table.print(std::cout);
  return EXIT_SUCCESS;
}
