// Command-line protocol comparison: averaged metrics for any subset of
// protocols on a configurable workload.
//
//   protocol_comparison [n] [info_bits] [trials] [protocol...]
//
//   ./protocol_comparison                      # defaults: 10000 1 5, all
//   ./protocol_comparison 50000 16 10 TPP MIC  # custom workload & subset
#include <cctype>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/table.hpp"
#include "core/polling.hpp"

int main(int argc, char** argv) {
  using namespace rfid;

  std::size_t n = 10000;
  std::size_t info_bits = 1;
  std::size_t trials = 5;
  std::vector<core::ProtocolKind> kinds;

  const auto usage = [&] {
    std::cerr << "usage: " << argv[0]
              << " [n] [info_bits] [trials] [protocol...]\n  protocols: ";
    for (const auto kind : protocols::all_protocols())
      std::cerr << protocols::to_string(kind) << ' ';
    std::cerr << '\n';
    return EXIT_FAILURE;
  };

  int arg = 1;
  // The three leading numeric arguments are positional; the first
  // non-numeric argument starts the protocol list. parse_size_arg is
  // strict: trailing garbage, overflow, and a zero workload are all
  // rejected instead of silently running a degenerate comparison.
  for (auto* slot : {&n, &info_bits, &trials}) {
    if (arg < argc && std::isdigit(static_cast<unsigned char>(*argv[arg]))) {
      const auto parsed = parse_size_arg(argv[arg]);
      if (!parsed) {
        std::cerr << "bad numeric argument: " << argv[arg] << '\n';
        return usage();
      }
      *slot = *parsed;
      ++arg;
    }
  }
  for (; arg < argc; ++arg) {
    const auto kind = protocols::parse_protocol(argv[arg]);
    if (!kind) {
      std::cerr << "unknown protocol: " << argv[arg] << '\n';
      return usage();
    }
    kinds.push_back(*kind);
  }
  if (kinds.empty())
    kinds.assign(protocols::all_protocols().begin(),
                 protocols::all_protocols().end());

  std::cout << "Comparing " << kinds.size() << " protocol(s): n = " << n
            << ", info bits = " << info_bits << ", trials = " << trials
            << "\n\n";

  const auto rows = core::compare_protocols(kinds, n, info_bits, trials);
  TablePrinter table({"protocol", "avg vector bits", "time (s)",
                      "95% CI (s)", "x lower bound"});
  const double bound = rows.back().avg_time_s;
  for (const core::ComparisonRow& row : rows) {
    table.add_row({row.protocol, TablePrinter::num(row.avg_vector_bits),
                   TablePrinter::num(row.avg_time_s, 3),
                   "\xC2\xB1" + TablePrinter::num(row.ci95_time_s, 3),
                   TablePrinter::num(row.avg_time_s / bound, 2)});
  }
  table.print(std::cout);
  return EXIT_SUCCESS;
}
