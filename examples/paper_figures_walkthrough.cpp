// Walkthrough of the paper's illustrative figures, reproduced live:
//   Fig. 2 — HPP's index picking with four tags (A-D, h = 2)
//   Fig. 6 — construction of the binary polling tree (five indices, h = 3)
//   Fig. 7 — tree-based polling: the five broadcast segments, 11 bits total
// Useful as an executable explanation of the protocols and as a visual
// sanity check that the implementation matches the paper bit for bit.
#include <array>
#include <iostream>
#include <map>
#include <vector>

#include "common/table.hpp"
#include "protocols/polling_tree.hpp"

int main() {
  using namespace rfid;

  // ---- Fig. 2: HPP index picking -----------------------------------------
  std::cout << "Fig. 2 — HPP picking indices (h = 2, tags A-D)\n\n";
  // The paper's example outcome: A,D -> 01 (collision), B -> 11, C -> 00,
  // 10 empty. We reproduce the *classification logic* on that assignment.
  const std::map<char, unsigned> picked = {
      {'A', 0b01}, {'B', 0b11}, {'C', 0b00}, {'D', 0b01}};
  std::array<int, 4> counts{};
  for (const auto& [tag, index] : picked) counts[index]++;
  TablePrinter fig2({"index", "picked by", "classification"});
  for (unsigned idx = 0; idx < 4; ++idx) {
    std::string who;
    for (const auto& [tag, index] : picked)
      if (index == idx) who += tag;
    const std::string kind = counts[idx] == 0   ? "empty (skipped)"
                             : counts[idx] == 1 ? "singleton (polled!)"
                                                : "collision (next round)";
    const std::string label = {static_cast<char>('0' + (idx >> 1)),
                               static_cast<char>('0' + (idx & 1))};
    fig2.add_row({label, who.empty() ? "-" : who, kind});
  }
  fig2.print(std::cout);
  std::cout << "The reader broadcasts only 00 (C replies) and 11 (B "
               "replies);\nA and D re-randomize next round.\n\n";

  // ---- Fig. 6: building the polling tree ---------------------------------
  std::cout << "Fig. 6 — polling tree over singleton indices "
               "{000, 010, 011, 101, 111} (h = 3)\n\n";
  const std::vector<std::uint32_t> indices = {0b000, 0b010, 0b011, 0b101,
                                              0b111};
  const protocols::PollingTree tree(indices, 3);
  std::cout << "  nodes (= broadcast bits): " << tree.node_count()
            << "   leaves: " << tree.leaf_count() << '\n'
            << "  naive cost would be 5 indices x 3 bits = 15 bits\n\n";

  // ---- Fig. 7: tree-based polling ------------------------------------------
  std::cout << "Fig. 7 — pre-order broadcast segments\n\n";
  TablePrinter fig7({"segment", "bits sent", "register A becomes",
                     "tag polled"});
  const char* tags_in_order[] = {"A", "B", "C", "D", "E"};
  const auto segments = tree.segments();
  std::uint32_t reg = 0;
  for (std::size_t j = 0; j < segments.size(); ++j) {
    const auto& segment = segments[j];
    std::string bits;
    for (unsigned b = 0; b < segment.length; ++b)
      bits += ((segment.bits >> (segment.length - 1 - b)) & 1u) ? '1' : '0';
    const std::uint32_t keep =
        segment.length >= 3 ? 0u : (7u & (~0u << segment.length));
    reg = (reg & keep) | segment.bits;
    std::string reg_str;
    for (int b = 2; b >= 0; --b) reg_str += ((reg >> b) & 1u) ? '1' : '0';
    fig7.add_row({"Seq[" + std::to_string(j + 1) + "]", bits, reg_str,
                  tags_in_order[j]});
  }
  fig7.print(std::cout);

  std::size_t total = 0;
  for (const auto& segment : segments) total += segment.length;
  std::cout << "\nTotal bits broadcast: " << total
            << " (the paper's 11, instead of 15) — common prefixes are\n"
               "transmitted exactly once.\n";
  return total == 11 ? 0 : 1;
}
