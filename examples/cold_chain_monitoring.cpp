// Cold-chain monitoring with sensor-augmented tags (paper Section I: "the
// temperature of chilled food").
//
// A refrigerated room holds pallets tagged with temperature-sensing RFID
// tags. Every monitoring cycle the reader collects a 16-bit reading from
// each tag; readings above a threshold trigger an alert. The example runs
// several cycles with TPP and shows the duty-cycle benefit of the short
// polling vector: more cycles per hour for the same air time.
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "core/polling.hpp"

namespace {

// Encode a temperature in Celsius as a 16-bit fixed-point payload
// (value = (temp + 64) * 256, covering -64C..+192C at 1/256C resolution).
rfid::BitVec encode_temperature(double celsius) {
  const auto raw = static_cast<std::uint16_t>((celsius + 64.0) * 256.0);
  rfid::BitVec payload;
  payload.append_bits(raw, 16);
  return payload;
}

double decode_temperature(const rfid::BitVec& payload) {
  return double(payload.read_bits(0, 16)) / 256.0 - 64.0;
}

}  // namespace

int main() {
  using namespace rfid;
  constexpr std::size_t kPallets = 5000;
  constexpr double kAlertCelsius = 8.0;

  Xoshiro256ss rng(77);
  std::vector<tags::Tag> sensor_tags;
  sensor_tags.reserve(kPallets);
  std::size_t hot_truth = 0;
  {
    const auto base = tags::TagPopulation::uniform_random(kPallets, rng);
    for (const tags::Tag& tag : base) {
      // Most pallets sit at 2..6 C; a compressor fault warms a few.
      double celsius = 2.0 + 4.0 * rng.uniform01();
      if (rng.bernoulli(0.004)) {
        celsius = 9.0 + 3.0 * rng.uniform01();
        ++hot_truth;
      }
      sensor_tags.emplace_back(tag.id(), encode_temperature(celsius));
    }
  }
  const tags::TagPopulation room{std::move(sensor_tags)};

  sim::SessionConfig config;
  config.info_bits = 16;
  config.seed = 7;

  std::cout << "Cold chain: " << kPallets << " pallets, alert threshold "
            << kAlertCelsius << " C, " << hot_truth
            << " genuinely overheating\n\n";

  TablePrinter table({"protocol", "cycle time (s)", "cycles per hour",
                      "alerts raised"});
  for (const core::ProtocolKind kind :
       {core::ProtocolKind::kTpp, core::ProtocolKind::kMic,
        core::ProtocolKind::kEhpp, core::ProtocolKind::kCpp}) {
    const auto report = core::collect_info(kind, room, config);
    if (!report.verification.ok) {
      std::cerr << "verification failed: " << report.verification.message
                << '\n';
      return EXIT_FAILURE;
    }
    std::size_t alerts = 0;
    for (const sim::CollectedRecord& record : report.result.records)
      alerts += decode_temperature(record.payload) > kAlertCelsius;
    if (alerts != hot_truth) {
      std::cerr << "alert count mismatch for " << report.result.protocol
                << ": " << alerts << " vs " << hot_truth << '\n';
      return EXIT_FAILURE;
    }
    const double cycle_s = report.result.exec_time_s();
    table.add_row({report.result.protocol, TablePrinter::num(cycle_s),
                   TablePrinter::num(3600.0 / cycle_s, 1),
                   std::to_string(alerts)});
  }
  table.print(std::cout);
  std::cout << "\nEvery protocol finds the same overheating pallets; TPP"
               " simply re-checks\nthe room several times more often per"
               " hour on the same radio budget.\n";
  return EXIT_SUCCESS;
}
