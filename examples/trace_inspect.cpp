// Replays a JSONL air-interface trace (examples/telemetry_export
// --trace-jsonl, or simserved --trace) into a per-phase time-accounting
// summary: where the microseconds went (vector transmission, commands,
// turn-arounds, tag replies, wasted slots), per-event-kind tallies, and
// slot-airtime quantiles via the streaming P2 estimator. Pure offline
// tool — it knows nothing about the simulator, only the trace schema.
//
//   ./trace_inspect [--follow] [--poll-ms N] TRACE.jsonl
//
// --follow tails a live trace (a file a running daemon keeps appending
// to), folding new lines in as they arrive and printing a one-line
// progress ticker; SIGINT stops following and prints the full summary.
// Only complete lines are consumed — a JSON object caught mid-write waits
// in the carry buffer for its closing newline instead of being miscounted
// as garbage. Integers are strictly parsed (parse_size_arg conventions:
// base-10 digits only, zero rejected).
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

#include "common/env.hpp"
#include "common/table.hpp"
#include "obs/histogram.hpp"
#include "obs/phase_timer.hpp"
#include "obs/trace.hpp"

namespace {

using namespace rfid;

volatile std::sig_atomic_t g_interrupted = 0;

void on_interrupt(int) { g_interrupted = 1; }

/// Pulls `"key":<number>` out of a JSONL line; 0 when absent. Good enough
/// for the fixed flat schema JsonlSink writes — not a general JSON parser.
double field_num(std::string_view line, std::string_view key) {
  const std::string needle = '"' + std::string(key) + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string_view::npos) return 0.0;
  return std::strtod(line.data() + pos + needle.size(), nullptr);
}

/// Pulls `"key":"value"` out of a JSONL line; empty when absent.
std::string field_str(std::string_view line, std::string_view key) {
  const std::string needle = '"' + std::string(key) + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string_view::npos) return {};
  const auto start = pos + needle.size();
  const auto end = line.find('"', start);
  if (end == std::string_view::npos) return {};
  return std::string(line.substr(start, end - start));
}

/// Streaming fold of trace lines into the summary accumulators, so the
/// one-shot and --follow paths share every attribution rule.
class TraceStats final {
 public:
  /// Folds one complete JSONL line. Returns false when the line claims to
  /// be a meta header of some other schema (fatal for the whole file).
  bool feed(std::string_view line) {
    if (line.empty()) return true;
    ++lines_;
    const std::string type = field_str(line, "type");
    if (type == "meta")
      return field_str(line, "schema") == "rfid-trace";
    obs::EventKind kind;
    if (type != "event" ||
        !obs::parse_event_kind(field_str(line, "event"), kind)) {
      ++skipped_;
      return true;
    }
    ++kind_counts_[static_cast<std::size_t>(kind)];
    const double duration = field_num(line, "duration_us");
    const double reader_us = field_num(line, "reader_us");
    const double tag_us = field_num(line, "tag_us");
    vector_bits_ +=
        static_cast<std::uint64_t>(field_num(line, "vector_bits"));
    command_bits_ +=
        static_cast<std::uint64_t>(field_num(line, "command_bits"));
    tag_bits_ += static_cast<std::uint64_t>(field_num(line, "tag_bits"));
    clock_us_ += duration;

    // The same attribution rules the live session uses
    // (docs/observability.md).
    switch (kind) {
      case obs::EventKind::kReaderBroadcast:
        phases_.add(field_num(line, "vector_bits") > 0
                        ? obs::Phase::kReaderVector
                        : obs::Phase::kCommand,
                    duration);
        break;
      case obs::EventKind::kReply:
        ++polls_;
        phases_.add(obs::Phase::kReaderVector, reader_us);
        phases_.add(obs::Phase::kTagReply, tag_us);
        phases_.add(obs::Phase::kTurnaround, duration - reader_us - tag_us);
        record_slot(duration);
        break;
      case obs::EventKind::kTimeout:
      case obs::EventKind::kCorrupted:
      case obs::EventKind::kSlotEmpty:
      case obs::EventKind::kSlotCollision:
        phases_.add(obs::Phase::kWastedSlot, duration);
        record_slot(duration);
        break;
      case obs::EventKind::kRoundBegin:
        ++rounds_;
        break;
      case obs::EventKind::kCircleBegin:
        ++circles_;
        break;
      case obs::EventKind::kPoll:
        break;  // airtime rides on the outcome event
    }
    return true;
  }

  [[nodiscard]] std::uint64_t total_events() const noexcept {
    std::uint64_t total = 0;
    for (std::size_t k = 0; k < obs::kEventKindCount; ++k)
      total += kind_counts_[k];
    return total;
  }

  [[nodiscard]] std::uint64_t lines() const noexcept { return lines_; }
  [[nodiscard]] std::uint64_t skipped() const noexcept { return skipped_; }
  [[nodiscard]] double clock_us() const noexcept { return clock_us_; }

  void print_summary(std::ostream& os, const std::string& path) const {
    os << "=== trace summary: " << path << " ===\n" << lines_ << " lines";
    if (skipped_ > 0) os << " (" << skipped_ << " unrecognized, skipped)";
    os << "\n\n";

    TablePrinter events({"event", "count"});
    for (std::size_t k = 0; k < obs::kEventKindCount; ++k)
      events.add_row(
          {std::string(to_string(static_cast<obs::EventKind>(k))),
           std::to_string(kind_counts_[k])});
    events.print(os);

    os << '\n';
    TablePrinter table({"phase", "time (us)", "share"});
    for (std::size_t p = 0; p < obs::kPhaseCount; ++p) {
      const auto phase = static_cast<obs::Phase>(p);
      table.add_row(
          {std::string(to_string(phase)),
           TablePrinter::num(phases_.get(phase), 1),
           TablePrinter::num(100.0 * phases_.fraction(phase), 1) + "%"});
    }
    table.add_row(
        {"total", TablePrinter::num(phases_.total_us(), 1), "100.0%"});
    table.print(os);

    os << "\nbits: vector " << vector_bits_ << ", command " << command_bits_
       << ", tag " << tag_bits_ << '\n'
       << "rounds " << rounds_ << ", circles " << circles_ << ", polls "
       << polls_ << '\n';
    if (polls_ > 0)
      os << "avg vector bits/poll: "
         << TablePrinter::num(static_cast<double>(vector_bits_) /
                                  static_cast<double>(polls_),
                              3)
         << '\n';
    if (slot_airtime_.count() > 0)
      os << "slot airtime us: mean "
         << TablePrinter::num(slot_airtime_.mean(), 1) << ", p50 "
         << TablePrinter::num(slot_p50_.value(), 1) << ", p99 "
         << TablePrinter::num(slot_p99_.value(), 1) << " (P2)\n";
    os << "clock total: " << TablePrinter::num(clock_us_, 1) << " us\n";
  }

 private:
  void record_slot(double duration) {
    slot_p50_.record(duration);
    slot_p99_.record(duration);
    slot_airtime_.record(duration);
  }

  obs::PhaseBreakdown phases_{};
  std::uint64_t kind_counts_[obs::kEventKindCount] = {};
  std::uint64_t vector_bits_ = 0, command_bits_ = 0, tag_bits_ = 0;
  std::uint64_t rounds_ = 0, circles_ = 0, polls_ = 0;
  double clock_us_ = 0.0;
  obs::P2Quantile slot_p50_{0.5}, slot_p99_{0.99};
  obs::Histogram slot_airtime_ = obs::Histogram::exponential(100.0, 1.2, 32);
  std::uint64_t lines_ = 0, skipped_ = 0;
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [--follow] [--poll-ms N] TRACE.jsonl\n"
               "  --follow    keep reading as the file grows (SIGINT for the"
               " summary)\n"
               "  --poll-ms N growth-poll interval, default 500 (strictly"
               " parsed, > 0)\n";
  return EXIT_FAILURE;
}

}  // namespace

int main(int argc, char** argv) {
  bool follow = false;
  std::size_t poll_ms = 500;
  std::string path;

  for (int arg = 1; arg < argc; ++arg) {
    const std::string_view flag = argv[arg];
    if (flag == "--follow") {
      follow = true;
    } else if (flag == "--poll-ms") {
      if (arg + 1 >= argc) return usage(argv[0]);
      const std::optional<std::size_t> parsed = parse_size_arg(argv[++arg]);
      if (!parsed) {
        std::cerr << "bad --poll-ms value: " << argv[arg] << '\n';
        return usage(argv[0]);
      }
      poll_ms = *parsed;
    } else if (flag.substr(0, 2) == "--") {
      std::cerr << "unknown flag: " << flag << '\n';
      return usage(argv[0]);
    } else if (path.empty()) {
      path = flag;
    } else {
      std::cerr << "unexpected argument: " << flag << '\n';
      return usage(argv[0]);
    }
  }
  if (path.empty()) return usage(argv[0]);

  std::ifstream in(path);
  if (!in.is_open()) {
    std::cerr << "cannot open " << path << '\n';
    return EXIT_FAILURE;
  }
  if (follow) {
    std::signal(SIGINT, on_interrupt);
    std::signal(SIGTERM, on_interrupt);
  }

  TraceStats stats;
  std::string carry;
  char buffer[4096];
  std::uint64_t last_reported = 0;
  bool schema_ok = true;

  while (schema_ok) {
    in.clear();
    in.read(buffer, sizeof(buffer));
    const std::streamsize got = in.gcount();
    if (got > 0) {
      carry.append(buffer, static_cast<std::size_t>(got));
      std::size_t start = 0;
      for (std::size_t nl = carry.find('\n'); nl != std::string::npos;
           nl = carry.find('\n', start)) {
        if (!stats.feed(std::string_view(carry).substr(start, nl - start))) {
          std::cerr << "not an rfid-trace JSONL file\n";
          schema_ok = false;
          break;
        }
        start = nl + 1;
      }
      carry.erase(0, start);
      continue;
    }
    // EOF. One-shot mode folds any unterminated final line and stops;
    // follow mode leaves it in the carry (the writer is mid-line) and
    // waits for the file to grow.
    if (!follow) {
      if (!carry.empty() && !stats.feed(carry)) {
        std::cerr << "not an rfid-trace JSONL file\n";
        schema_ok = false;
      }
      break;
    }
    if (g_interrupted != 0) break;
    if (const std::uint64_t events = stats.total_events();
        events != last_reported) {
      last_reported = events;
      std::cerr << "\rfollowing " << path << ": " << events << " events, "
                << TablePrinter::num(stats.clock_us() / 1e6, 3)
                << " s sim clock (^C for summary)   " << std::flush;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
  }
  if (!schema_ok) return EXIT_FAILURE;
  if (follow) std::cerr << '\n';

  if (stats.total_events() == 0) {
    std::cerr << "no trace events in " << path << " (" << stats.lines()
              << " lines, " << stats.skipped()
              << " unrecognized) — is this a telemetry_export"
                 " --trace-jsonl file?\n";
    return EXIT_FAILURE;
  }
  stats.print_summary(std::cout, path);
  return EXIT_SUCCESS;
}
