// Replays a JSONL air-interface trace (examples/telemetry_export
// --trace-jsonl) into a per-phase time-accounting summary: where the
// microseconds went (vector transmission, commands, turn-arounds, tag
// replies, wasted slots), per-event-kind tallies, and slot-airtime
// quantiles via the streaming P2 estimator. Pure offline tool — it knows
// nothing about the simulator, only the trace schema.
//
//   ./trace_inspect TRACE.jsonl
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>

#include "common/table.hpp"
#include "obs/histogram.hpp"
#include "obs/phase_timer.hpp"
#include "obs/trace.hpp"

namespace {

using namespace rfid;

/// Pulls `"key":<number>` out of a JSONL line; 0 when absent. Good enough
/// for the fixed flat schema JsonlSink writes — not a general JSON parser.
double field_num(std::string_view line, std::string_view key) {
  const std::string needle = '"' + std::string(key) + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string_view::npos) return 0.0;
  return std::strtod(line.data() + pos + needle.size(), nullptr);
}

/// Pulls `"key":"value"` out of a JSONL line; empty when absent.
std::string field_str(std::string_view line, std::string_view key) {
  const std::string needle = '"' + std::string(key) + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string_view::npos) return {};
  const auto start = pos + needle.size();
  const auto end = line.find('"', start);
  if (end == std::string_view::npos) return {};
  return std::string(line.substr(start, end - start));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: " << argv[0] << " TRACE.jsonl\n";
    return EXIT_FAILURE;
  }
  std::ifstream in(argv[1]);
  if (!in.is_open()) {
    std::cerr << "cannot open " << argv[1] << '\n';
    return EXIT_FAILURE;
  }

  obs::PhaseBreakdown phases;
  std::uint64_t kind_counts[obs::kEventKindCount] = {};
  std::uint64_t vector_bits = 0, command_bits = 0, tag_bits = 0;
  std::uint64_t rounds = 0, circles = 0, polls = 0;
  double clock_us = 0.0;
  obs::P2Quantile slot_p50(0.5), slot_p99(0.99);
  obs::Histogram slot_airtime = obs::Histogram::exponential(100.0, 1.2, 32);
  std::uint64_t lines = 0, skipped = 0;

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    const std::string type = field_str(line, "type");
    if (type == "meta") {
      if (field_str(line, "schema") != "rfid-trace") {
        std::cerr << "not an rfid-trace JSONL file\n";
        return EXIT_FAILURE;
      }
      continue;
    }
    obs::EventKind kind;
    if (type != "event" || !obs::parse_event_kind(field_str(line, "event"),
                                                  kind)) {
      ++skipped;
      continue;
    }
    ++kind_counts[static_cast<std::size_t>(kind)];
    const double duration = field_num(line, "duration_us");
    const double reader_us = field_num(line, "reader_us");
    const double tag_us = field_num(line, "tag_us");
    vector_bits += static_cast<std::uint64_t>(field_num(line, "vector_bits"));
    command_bits +=
        static_cast<std::uint64_t>(field_num(line, "command_bits"));
    tag_bits += static_cast<std::uint64_t>(field_num(line, "tag_bits"));
    clock_us += duration;

    // The same attribution rules the live session uses (docs/observability.md).
    switch (kind) {
      case obs::EventKind::kReaderBroadcast:
        phases.add(field_num(line, "vector_bits") > 0
                       ? obs::Phase::kReaderVector
                       : obs::Phase::kCommand,
                   duration);
        break;
      case obs::EventKind::kReply:
        ++polls;
        phases.add(obs::Phase::kReaderVector, reader_us);
        phases.add(obs::Phase::kTagReply, tag_us);
        phases.add(obs::Phase::kTurnaround, duration - reader_us - tag_us);
        slot_p50.record(duration);
        slot_p99.record(duration);
        slot_airtime.record(duration);
        break;
      case obs::EventKind::kTimeout:
      case obs::EventKind::kCorrupted:
      case obs::EventKind::kSlotEmpty:
      case obs::EventKind::kSlotCollision:
        phases.add(obs::Phase::kWastedSlot, duration);
        slot_p50.record(duration);
        slot_p99.record(duration);
        slot_airtime.record(duration);
        break;
      case obs::EventKind::kRoundBegin:
        ++rounds;
        break;
      case obs::EventKind::kCircleBegin:
        ++circles;
        break;
      case obs::EventKind::kPoll:
        break;  // airtime rides on the outcome event
    }
  }

  std::uint64_t total_events = 0;
  for (std::size_t k = 0; k < obs::kEventKindCount; ++k)
    total_events += kind_counts[k];
  if (total_events == 0) {
    std::cerr << "no trace events in " << argv[1] << " (" << lines
              << " lines, " << skipped
              << " unrecognized) — is this a telemetry_export"
                 " --trace-jsonl file?\n";
    return EXIT_FAILURE;
  }

  std::cout << "=== trace summary: " << argv[1] << " ===\n"
            << lines << " lines";
  if (skipped > 0) std::cout << " (" << skipped << " unrecognized, skipped)";
  std::cout << "\n\n";

  TablePrinter events({"event", "count"});
  for (std::size_t k = 0; k < obs::kEventKindCount; ++k)
    events.add_row({std::string(to_string(static_cast<obs::EventKind>(k))),
                    std::to_string(kind_counts[k])});
  events.print(std::cout);

  std::cout << '\n';
  TablePrinter table({"phase", "time (us)", "share"});
  for (std::size_t p = 0; p < obs::kPhaseCount; ++p) {
    const auto phase = static_cast<obs::Phase>(p);
    table.add_row({std::string(to_string(phase)),
                   TablePrinter::num(phases.get(phase), 1),
                   TablePrinter::num(100.0 * phases.fraction(phase), 1) + "%"});
  }
  table.add_row({"total", TablePrinter::num(phases.total_us(), 1), "100.0%"});
  table.print(std::cout);

  std::cout << "\nbits: vector " << vector_bits << ", command "
            << command_bits << ", tag " << tag_bits << '\n'
            << "rounds " << rounds << ", circles " << circles << ", polls "
            << polls << '\n';
  if (polls > 0)
    std::cout << "avg vector bits/poll: "
              << TablePrinter::num(
                     static_cast<double>(vector_bits) /
                         static_cast<double>(polls),
                     3)
              << '\n';
  if (slot_airtime.count() > 0)
    std::cout << "slot airtime us: mean "
              << TablePrinter::num(slot_airtime.mean(), 1) << ", p50 "
              << TablePrinter::num(slot_p50.value(), 1) << ", p99 "
              << TablePrinter::num(slot_p99.value(), 1) << " (P2)\n";
  std::cout << "clock total: " << TablePrinter::num(clock_us, 1) << " us\n";
  return EXIT_SUCCESS;
}
