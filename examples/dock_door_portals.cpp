// Multi-reader dock-door deployment (paper Section II-A: multiple readers
// under a collision-free schedule, logically one reader).
//
// A distribution centre has four dock doors, each with its own portal
// reader covering an RF-isolated zone. The backend partitions the known
// inventory across the portals and each runs TPP over its share. The
// example contrasts the two schedules the library models: time-division
// (portals share one channel) and spatially parallel (isolated zones).
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "core/multi_reader.hpp"

int main() {
  using namespace rfid;

  constexpr std::size_t kInventory = 40000;
  constexpr std::size_t kPortals = 4;
  Xoshiro256ss rng(4);
  const tags::TagPopulation inventory =
      tags::TagPopulation::uniform_random(kInventory, rng);

  std::cout << "Distribution centre: " << kInventory << " tagged cartons, "
            << kPortals << " dock-door portals (TPP per portal)\n\n";

  TablePrinter table({"schedule", "makespan (s)", "total reader-busy (s)",
                      "covered exactly once"});
  for (const auto& [schedule, label] :
       std::initializer_list<std::pair<core::ReaderSchedule, const char*>>{
           {core::ReaderSchedule::kTimeDivision, "time-division (1 channel)"},
           {core::ReaderSchedule::kSpatialParallel,
            "spatially parallel (4 zones)"}}) {
    core::MultiReaderConfig config;
    config.readers = kPortals;
    config.kind = protocols::ProtocolKind::kTpp;
    config.schedule = schedule;
    config.session.info_bits = 1;
    config.session.seed = 99;
    const auto report = core::run_multi_reader(inventory, config);
    if (!report.verified) {
      std::cerr << "coverage verification failed\n";
      return EXIT_FAILURE;
    }
    table.add_row({label, TablePrinter::num(report.makespan_s),
                   TablePrinter::num(report.total_busy_s),
                   report.verified ? "yes" : "NO"});
  }
  table.print(std::cout);

  std::cout << "\nPer-portal share (time-division run):\n";
  core::MultiReaderConfig config;
  config.readers = kPortals;
  config.session.seed = 99;
  const auto report = core::run_multi_reader(inventory, config);
  for (std::size_t r = 0; r < report.per_reader.size(); ++r) {
    const auto& result = report.per_reader[r];
    std::cout << "  portal " << r << ": " << result.metrics.polls
              << " cartons in " << TablePrinter::num(result.exec_time_s())
              << " s (w = "
              << TablePrinter::num(result.avg_vector_bits()) << " bits)\n";
  }
  std::cout << "\nIsolated zones sweep in ~1/4 the wall-clock time; the"
               " hash partition\nkeeps every portal's share — and TPP's"
               " ~3-bit vector — balanced.\n";
  return EXIT_SUCCESS;
}
