// Machine-readable telemetry: run one inventory with per-round tracing and
// emit the full result as JSON on stdout (dashboards, regression tooling).
// Optionally streams the air-interface event trace as JSON Lines — one
// typed event per broadcast/poll/reply/slot (see docs/observability.md).
//
//   ./telemetry_export [protocol] [n] [--trace-jsonl PATH]
//     defaults: TPP 2000; n must be a positive base-10 integer
#include <cstdlib>
#include <iostream>
#include <string_view>

#include "common/env.hpp"
#include "core/polling.hpp"
#include "obs/trace.hpp"
#include "sim/report_io.hpp"

int main(int argc, char** argv) {
  using namespace rfid;

  core::ProtocolKind kind = core::ProtocolKind::kTpp;
  std::size_t n = 2000;
  std::string trace_path;

  const auto usage = [&] {
    std::cerr << "usage: " << argv[0]
              << " [protocol] [n] [--trace-jsonl PATH]\n"
                 "  n must be a positive integer (strictly parsed)\n";
    return EXIT_FAILURE;
  };

  int arg = 1;
  if (arg < argc && std::string_view(argv[arg]).substr(0, 2) != "--") {
    const auto parsed = protocols::parse_protocol(argv[arg]);
    if (!parsed) {
      std::cerr << "unknown protocol: " << argv[arg] << '\n';
      return usage();
    }
    kind = *parsed;
    ++arg;
  }
  if (arg < argc && std::string_view(argv[arg]).substr(0, 2) != "--") {
    const auto parsed = parse_size_arg(argv[arg]);
    if (!parsed) {
      std::cerr << "bad population size: " << argv[arg] << '\n';
      return usage();
    }
    n = *parsed;
    ++arg;
  }
  for (; arg < argc; ++arg) {
    if (std::string_view(argv[arg]) == "--trace-jsonl" && arg + 1 < argc) {
      trace_path = argv[++arg];
    } else {
      std::cerr << "unexpected argument: " << argv[arg] << '\n';
      return usage();
    }
  }

  Xoshiro256ss rng(2026);
  const auto population = tags::TagPopulation::uniform_random(n, rng);
  sim::SessionConfig config;
  config.seed = 7;
  config.keep_trace = true;
  config.keep_records = false;

  // The tracer must outlive the run; the sink flushes on session finish.
  std::optional<obs::JsonlSink> jsonl;
  obs::Tracer tracer;
  if (!trace_path.empty()) {
    try {
      jsonl.emplace(trace_path);
    } catch (const std::exception& e) {
      std::cerr << e.what() << '\n';
      return EXIT_FAILURE;
    }
    tracer.add_sink(&*jsonl);
    config.tracer = &tracer;
  }

  const auto result = protocols::make_protocol(kind)->run(population, config);
  sim::write_json(std::cout, result);
  return EXIT_SUCCESS;
}
