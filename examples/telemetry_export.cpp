// Machine-readable telemetry: run one inventory with per-round tracing and
// emit the full result as JSON on stdout (dashboards, regression tooling).
//
//   ./telemetry_export [protocol] [n]     # defaults: TPP 2000
#include <cstdlib>
#include <iostream>

#include "core/polling.hpp"
#include "sim/report_io.hpp"

int main(int argc, char** argv) {
  using namespace rfid;

  core::ProtocolKind kind = core::ProtocolKind::kTpp;
  std::size_t n = 2000;
  if (argc > 1) {
    const auto parsed = protocols::parse_protocol(argv[1]);
    if (!parsed) {
      std::cerr << "unknown protocol: " << argv[1] << '\n';
      return EXIT_FAILURE;
    }
    kind = *parsed;
  }
  if (argc > 2) n = static_cast<std::size_t>(std::strtoull(argv[2], nullptr, 10));

  Xoshiro256ss rng(2026);
  const auto population = tags::TagPopulation::uniform_random(n, rng);
  sim::SessionConfig config;
  config.seed = 7;
  config.keep_trace = true;
  config.keep_records = false;

  const auto result = protocols::make_protocol(kind)->run(population, config);
  sim::write_json(std::cout, result);
  return EXIT_SUCCESS;
}
