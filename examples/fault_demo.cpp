// Fault-injection walkthrough: what a polling reader does when the clean-
// channel assumption breaks. Three acts over the same 1,000-tag workload:
//
//   1. clean channel          — the paper's setting, zero waste;
//   2. burst loss, no policy  — a Gilbert–Elliott link garbles replies in
//                               bursts; tags drift into later rounds;
//   3. burst loss + churn + recovery — some tags leave mid-run (two return
//                               later), the reader re-polls with a bounded
//                               per-tag budget and reports exactly which
//                               tags it gave up on.
//
// With --ber a fourth act runs the downlink-corruption path: per-bit errors
// on every reader broadcast, survived by CRC-framed segmented broadcast
// with bounded retransmission.
//
// Act 5 moves up a layer: a supervised 4-reader fleet sweeps the same
// population with reader-level faults armed (crashes, stalls). Downed
// readers hand their unread tags to the next alive reader in ring order
// under a bounded handoff budget; the supervisor restarts them with
// exponential backoff. The fleet delivers or lists every tag — never
// silently drops one — and the demo prints the health ledger to prove it.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/fault_demo
//   ./build/examples/fault_demo --ber 0.01 --segment-bits 32 --seed 7
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/table.hpp"
#include "core/multi_reader.hpp"
#include "obs/phase_timer.hpp"
#include "protocols/registry.hpp"
#include "sim/verify.hpp"

int main(int argc, char** argv) {
  using namespace rfid;

  double ber = 0.0;
  std::size_t segment_bits = 32;
  std::uint64_t seed = 7;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(EXIT_FAILURE);
      }
      return argv[++i];
    };
    if (arg == "--ber") {
      ber = std::strtod(value(), nullptr);
      if (ber < 0.0 || ber > 1.0) {
        std::cerr << "--ber must be in [0, 1]\n";
        return EXIT_FAILURE;
      }
    } else if (arg == "--segment-bits") {
      segment_bits = std::strtoull(value(), nullptr, 10);
      if (segment_bits == 0) {
        std::cerr << "--segment-bits must be positive\n";
        return EXIT_FAILURE;
      }
    } else if (arg == "--seed") {
      seed = std::strtoull(value(), nullptr, 10);
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--ber X] [--segment-bits N] [--seed S]\n";
      return EXIT_FAILURE;
    }
  }

  Xoshiro256ss rng(seed);
  const tags::TagPopulation population =
      tags::TagPopulation::uniform_random(1000, rng);
  const auto protocol = protocols::make_protocol(protocols::ProtocolKind::kTpp);

  // Act 1 — the paper's clean channel.
  sim::SessionConfig clean;
  clean.seed = 99;

  // Act 2 — same workload over a bursty link (about 11% stationary loss in
  // multi-reply fades), no recovery policy: garbled tags simply stay awake.
  sim::SessionConfig bursty = clean;
  bursty.fault.link = fault::LinkModel::kGilbertElliott;

  // Act 3 — bursts plus churn plus the recovery policy. Five tags leave at
  // round 2 (any collected in round 1 stay collected); two of them come
  // back at round 5. Bounded re-polls (budget 6) collect everything present
  // and name exactly the departed-and-never-read tags.
  sim::SessionConfig recovered = bursty;
  for (std::size_t i = 0; i < 5; ++i) {
    recovered.fault.churn.push_back(
        {2, population[i * 100].id(), fault::ChurnEvent::Kind::kDepart});
  }
  for (std::size_t i = 0; i < 2; ++i) {
    recovered.fault.churn.push_back(
        {5, population[i * 100].id(), fault::ChurnEvent::Kind::kArrive});
  }
  recovered.recovery.enabled = true;
  recovered.recovery.retry_budget = 6;

  // Act 4 (only with --ber) — downlink bit errors survived by CRC framing:
  // every broadcast is split into `segment_bits`-bit segments with a 20-bit
  // header+CRC, corrupt segments are retransmitted with bounded backoff.
  sim::SessionConfig framed = clean;
  framed.fault.downlink_ber = ber;
  framed.framing.enabled = true;
  framed.framing.segment_payload_bits = static_cast<unsigned>(segment_bits);
  framed.recovery.enabled = true;
  framed.recovery.retry_budget = 12;

  TablePrinter table({"scenario", "collected", "undelivered", "corrupted",
                      "retries", "time (s)", "recovery (s)"});
  table.set_title("TPP, 1000 tags: clean vs burst loss vs recovery");
  struct Act final {
    std::string name;
    const sim::SessionConfig* config;
  };
  std::vector<Act> acts = {{"clean channel", &clean},
                           {"burst loss", &bursty},
                           {"burst+churn+recovery", &recovered}};
  if (ber > 0.0) {
    acts.push_back({"ber " + TablePrinter::num(ber) + " + framing", &framed});
  }

  sim::RunResult last;
  for (const auto& act : acts) {
    const sim::RunResult result = protocol->run(population, *act.config);
    table.add_row(
        {act.name, std::to_string(result.records.size()),
         std::to_string(result.metrics.undelivered),
         std::to_string(result.metrics.corrupted),
         std::to_string(result.metrics.retries),
         TablePrinter::num(result.exec_time_s()),
         TablePrinter::num(
             result.metrics.phases.get(obs::Phase::kRecovery) / 1e6)});
    last = result;
  }
  table.print(std::cout);

  if (ber > 0.0) {
    std::cout << "\nFraming overhead: " << last.metrics.framing_overhead_bits
              << " bits over " << last.metrics.segments_sent << " segments ("
              << last.metrics.segments_corrupted << " corrupted, "
              << last.metrics.segments_retransmitted << " retransmitted)\n";
  }

  // The final fault run must account for every tag: collected or
  // undelivered.
  const auto verify = sim::verify_complete_collection(population, last);
  if (!verify.ok) {
    std::cerr << "verification FAILED: " << verify.message << '\n';
    return EXIT_FAILURE;
  }
  std::cout << "\nTags the reader gave up on (retry budget exhausted):\n";
  for (const TagId& id : last.undelivered_ids)
    std::cout << "  " << id.to_hex() << '\n';
  std::cout << "\nEvery tag is accounted for: collected or undelivered, "
               "never silently dropped.\n";

  // Act 5 — the supervised fleet. Four readers split the inventory; the
  // reader-fault process crashes and stalls them mid-sweep. Handoffs rehome
  // a downed reader's unread tags; the supervisor's backoff restarts bring
  // the reader back for later ticks.
  core::FleetConfig fleet_config;
  fleet_config.readers = 4;
  fleet_config.session.seed = seed;
  fleet_config.reader_faults.crash_per_tick = 0.02;
  fleet_config.reader_faults.stall_per_tick = 0.05;
  fleet_config.supervisor.backoff_initial_ticks = 2;
  const core::FleetReport fleet = core::run_fleet(population, fleet_config);

  TablePrinter fleet_table({"reader", "collected", "incarnations", "crashes",
                            "stalls", "restarts", "final health"});
  fleet_table.set_title("Act 5 — supervised 4-reader fleet under crash/stall "
                        "faults");
  for (std::size_t r = 0; r < fleet.per_reader.size(); ++r) {
    const core::FleetReaderReport& reader = fleet.per_reader[r];
    fleet_table.add_row({"R" + std::to_string(r),
                         std::to_string(reader.collected),
                         std::to_string(reader.incarnations),
                         std::to_string(reader.crashes),
                         std::to_string(reader.stalls),
                         std::to_string(reader.restarts),
                         std::string(obs::to_string(reader.final_health))});
  }
  std::cout << '\n';
  fleet_table.print(std::cout);

  std::cout << "\nFleet sweep: " << fleet.records.size() << " collected, "
            << fleet.undelivered_ids.size() << " undelivered, "
            << fleet.handoffs << " handoffs, " << fleet.ticks << " ticks, "
            << fleet.transitions.size() << " health transitions\n";
  if (!fleet.verified) {
    std::cerr << "fleet verification FAILED: a tag was neither delivered "
                 "nor listed\n";
    return EXIT_FAILURE;
  }
  std::cout << "Fleet accounting verified: every tag delivered or listed "
               "exactly once, across crashes and handoffs.\n";
  return EXIT_SUCCESS;
}
