// Quickstart: collect 16-bit sensor readings from 2,000 tags with each of
// the paper's protocols and print what the polling vector compression buys.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdlib>
#include <iostream>

#include "core/polling.hpp"
#include "common/table.hpp"

int main() {
  using namespace rfid;

  // A population of 2,000 tags with random EPC-96 IDs and 16-bit payloads
  // (say, temperature readings from sensor-augmented tags).
  Xoshiro256ss rng(/*seed=*/7);
  const tags::TagPopulation population =
      tags::TagPopulation::uniform_random(2000, rng).with_random_payloads(16,
                                                                          rng);

  sim::SessionConfig config;
  config.info_bits = 16;
  config.seed = 1234;

  TablePrinter table({"protocol", "avg vector bits", "time (s)",
                      "rounds", "verified"});
  table.set_title("Collecting 16-bit payloads from 2000 tags");
  for (const core::ProtocolKind kind :
       {core::ProtocolKind::kCpp, core::ProtocolKind::kCodedPolling,
        core::ProtocolKind::kHpp, core::ProtocolKind::kEhpp,
        core::ProtocolKind::kTpp}) {
    const core::CollectionReport report =
        core::collect_info(kind, population, config);
    if (!report.verification.ok) {
      std::cerr << "verification FAILED for " << report.result.protocol
                << ": " << report.verification.message << '\n';
      return EXIT_FAILURE;
    }
    table.add_row({report.result.protocol,
                   TablePrinter::num(report.result.avg_vector_bits()),
                   TablePrinter::num(report.result.exec_time_s()),
                   std::to_string(report.result.metrics.rounds), "yes"});
  }
  table.print(std::cout);

  std::cout << "\nTPP singles each tag out with ~3 bits instead of the "
               "96-bit ID --\nthe paper's headline result.\n";
  return EXIT_SUCCESS;
}
