// deployment_sweep — drive the deployment simulator (core::Deployment) over
// a seeded population and print a wall-clock-free report.
//
//   ./deployment_sweep [--tags N] [--readers N] [--channels N]
//                      [--overlap X] [--churn X] [--shards N] [--seed N]
//                      [--protocol hpp|tpp] [--report-json PATH]
//
// Every output byte is a pure function of the flags: the population is
// generated with per-shard pure RNG streams, the sweep itself is
// byte-identical serial vs RFID_THREADS=N and invariant to --shards, and
// no wall clock is ever read — which is exactly what lets
// scripts/check_determinism.sh diff two runs of this binary bit-for-bit.
//
// --churn X splits the per-tag per-tick hazard 4/5 zone moves (handoffs to
// the new owner) and 1/5 departures (listed missing), the same split
// tools/simserved uses for --churn-rate.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/env.hpp"
#include "core/deployment.hpp"
#include "obs/stream.hpp"
#include "parallel/thread_pool.hpp"
#include "tags/population.hpp"

namespace {

using namespace rfid;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--tags N] [--readers N] [--channels N] [--overlap X]\n"
               "       [--churn X] [--shards N] [--seed N]\n"
               "       [--protocol hpp|tpp] [--report-json PATH]\n"
               "  --overlap in [0,1]; --churn in [0,1); integers strictly\n"
               "  base-10; RFID_THREADS=N pools the parallel phase\n";
  return EXIT_FAILURE;
}

/// Strict non-negative decimal (digits, at most one dot).
std::optional<double> parse_fraction_arg(std::string_view text) {
  if (text.empty() || text == ".") return std::nullopt;
  bool dot = false;
  for (const char c : text) {
    if (c == '.') {
      if (dot) return std::nullopt;
      dot = true;
    } else if (c < '0' || c > '9') {
      return std::nullopt;
    }
  }
  return std::stod(std::string(text));
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t tags_n = 100000;
  std::size_t readers = 64;
  std::size_t channels = 8;
  double overlap = 0.1;
  double churn = 0.0;
  std::size_t shards = 0;
  std::uint64_t seed = 1;
  protocols::ProtocolKind kind = protocols::ProtocolKind::kTpp;
  std::string report_json_path;

  for (int arg = 1; arg < argc; ++arg) {
    const std::string_view flag = argv[arg];
    const auto next_size = [&](bool allow_zero) -> std::optional<std::size_t> {
      if (arg + 1 >= argc) return std::nullopt;
      return parse_size_arg(argv[++arg], allow_zero);
    };
    std::optional<std::size_t> value;
    if (flag == "--tags" && (value = next_size(false))) {
      tags_n = *value;
    } else if (flag == "--readers" && (value = next_size(false))) {
      readers = *value;
    } else if (flag == "--channels" && (value = next_size(false))) {
      channels = *value;
    } else if (flag == "--shards" && (value = next_size(true))) {
      shards = *value;
    } else if (flag == "--seed" && (value = next_size(false))) {
      seed = *value;
    } else if (flag == "--overlap" && arg + 1 < argc) {
      const auto fraction = parse_fraction_arg(argv[++arg]);
      if (!fraction || *fraction > 1.0) return usage(argv[0]);
      overlap = *fraction;
    } else if (flag == "--churn" && arg + 1 < argc) {
      const auto fraction = parse_fraction_arg(argv[++arg]);
      if (!fraction || *fraction >= 1.0) return usage(argv[0]);
      churn = *fraction;
    } else if (flag == "--protocol" && arg + 1 < argc) {
      const std::string_view name = argv[++arg];
      if (name == "hpp") {
        kind = protocols::ProtocolKind::kHpp;
      } else if (name == "tpp") {
        kind = protocols::ProtocolKind::kTpp;
      } else {
        return usage(argv[0]);
      }
    } else if (flag == "--report-json" && arg + 1 < argc) {
      report_json_path = argv[++arg];
    } else {
      std::cerr << "bad argument: " << flag << '\n';
      return usage(argv[0]);
    }
  }

  // RFID_THREADS=k pools the tick loop's parallel phase; unset or 0 runs
  // serially. Either way the report is bit-identical (reader-ordered merge
  // fold) — the CI determinism stanza diffs exactly this output.
  std::unique_ptr<parallel::ThreadPool> pool;
  if (const std::uint64_t threads = env_u64("RFID_THREADS", 0); threads > 0)
    pool = std::make_unique<parallel::ThreadPool>(
        static_cast<unsigned>(threads));

  // Population generation is sharded with pure (seed, shard) streams; the
  // shard count here is a fixed generation constant (not --shards, which
  // only sets the execution grain), so every run of the same --tags/--seed
  // sees the same IDs.
  constexpr std::size_t kGenShards = 8;
  const tags::TagPopulation population =
      tags::TagPopulation::uniform_random_sharded(tags_n, seed, kGenShards);

  core::DeploymentConfig config;
  config.readers = readers;
  config.channels = channels;
  config.kind = kind;
  config.session.seed = seed;
  config.session.keep_records = false;  // count-verified at this scale
  config.zone_overlap = overlap;
  config.churn_move_per_tick = churn * 0.8;
  config.churn_depart_per_tick = churn * 0.2;
  config.shards = shards;

  const core::DeploymentReport report =
      core::run_deployment(population, config, pool.get());

  std::cout << "deployment_sweep: " << tags_n << " tags x " << readers
            << " readers x " << channels << " channels (overlap " << overlap
            << ", churn " << churn << ", seed " << seed << ")\n"
            << "  ticks " << report.ticks << ", delivered "
            << report.delivered << ", missing " << report.missing_ids.size()
            << ", undelivered " << report.undelivered_ids.size()
            << ", handoffs " << report.handoffs << " (" << report.churn_moves
            << " churn moves), departures " << report.churn_departures
            << "\n"
            << "  makespan " << report.makespan_s << " s, busy "
            << report.total_busy_s << " s, verified "
            << (report.verified ? "yes" : "NO") << '\n';
  for (std::size_t c = 0; c < report.per_channel.size(); ++c)
    std::cout << "  channel " << c << ": " << report.per_channel[c].readers
              << " readers, " << report.per_channel[c].rounds << " rounds, "
              << report.per_channel[c].busy_us * 1e-6 << " s\n";

  if (!report_json_path.empty()) {
    std::ofstream out(report_json_path);
    if (!out) {
      std::cerr << "cannot open " << report_json_path << " for writing\n";
      return EXIT_FAILURE;
    }
    // Deterministic JSON: the totals metrics (byte-stable writer) plus the
    // deployment counters. The determinism gate byte-compares this file.
    out << R"({"tags":)" << tags_n << R"(,"readers":)" << readers
        << R"(,"channels":)" << channels << R"(,"ticks":)" << report.ticks
        << R"(,"delivered":)" << report.delivered << R"(,"missing":)"
        << report.missing_ids.size() << R"(,"undelivered":)"
        << report.undelivered_ids.size() << R"(,"handoffs":)"
        << report.handoffs << R"(,"churn_moves":)" << report.churn_moves
        << R"(,"churn_departures":)" << report.churn_departures
        << R"(,"verified":)" << (report.verified ? "true" : "false")
        << R"(,"totals":)";
    obs::write_json(out, report.totals);
    out << "}\n";
  }

  return report.verified ? EXIT_SUCCESS : EXIT_FAILURE;
}
