// Warehouse inventory on the deployment simulator: goods flowing from dock
// doors to shelf zones with live reader-to-reader handoffs.
//
// A receiving site runs a fleet of readers — think of a few covering the
// dock doors where pallets arrive and the rest covering shelf aisles —
// sharing a handful of frequency channels (co-channel readers take turns;
// readers on different channels interrogate concurrently). Goods do not
// sit still while the sweep runs: pallets roll from the dock into the
// aisles, and some ship straight back out before they are ever read.
// Every observed zone move hands the tag off to the reader that now owns
// it; every early departure is flagged missing. core::Deployment keeps the
// books exact the whole way:
//     population = delivered + missing + undelivered
// — churn, channel contention and handoffs included (`verified` below).
//
// The sweep is repeated at three channel counts to show the trade-off the
// single-reader model hides: more channels buy spatial parallelism (shorter
// makespan) while total reader airtime — the energy bill — stays flat.
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "core/deployment.hpp"
#include "tags/population.hpp"

int main() {
  using namespace rfid;

  // 40,000 tagged goods over 12 readers. Zones are hash-assigned, so the
  // dock-door/shelf labels are narrative — what matters is that goods MOVE
  // between zones mid-sweep. 15% of tags sit near zone boundaries where
  // two readers can hear them; ownership resolves deterministically to
  // exactly one, so nothing is double-counted.
  constexpr std::size_t kGoods = 40000;
  constexpr std::size_t kReaders = 12;
  constexpr std::uint64_t kSeed = 20160816;

  const tags::TagPopulation goods =
      tags::TagPopulation::uniform_random_sharded(kGoods, kSeed, 8);

  core::DeploymentConfig config;
  config.readers = kReaders;
  config.kind = protocols::ProtocolKind::kTpp;  // the paper's fastest
  config.session.seed = kSeed;
  config.session.keep_records = false;
  config.zone_overlap = 0.15;
  // Per-tag, per-tick hazards: ~0.2% of unread goods relocate dock -> shelf
  // (or shelf -> shelf) each tick; ~0.02% ship out before they are read.
  config.churn_move_per_tick = 0.002;
  config.churn_depart_per_tick = 0.0002;

  std::cout << "Warehouse inventory under churn: " << kGoods << " goods, "
            << kReaders << " readers\n\n";

  TablePrinter table({"channels", "ticks", "handoffs", "shipped out",
                      "makespan (s)", "reader airtime (s)", "verified"});
  for (const std::size_t channels :
       {std::size_t{2}, std::size_t{4}, std::size_t{12}}) {
    config.channels = channels;
    const core::DeploymentReport report = core::run_deployment(goods, config);
    table.add_row({std::to_string(channels), std::to_string(report.ticks),
                   std::to_string(report.handoffs),
                   std::to_string(report.churn_departures),
                   TablePrinter::num(report.makespan_s, 3),
                   TablePrinter::num(report.total_busy_s, 3),
                   report.verified ? "yes" : "NO"});
    if (!report.verified) return EXIT_FAILURE;
  }
  table.print(std::cout);

  std::cout << "\nEvery relocated pallet was handed off to its new zone's"
               " reader mid-sweep,\nevery early shipment is on the missing"
               " list, and delivered + missing +\nundelivered covers all "
            << kGoods << " goods exactly once at every channel count.\n";
  return EXIT_SUCCESS;
}
