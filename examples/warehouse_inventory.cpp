// Warehouse anti-theft sweep (the paper's Section I missing-tag use case).
//
// A warehouse knows its full inventory of tagged items. Overnight, some
// items disappear. The reader interrogates every expected tag for a 1-bit
// presence reply; tags that never answer are flagged missing. This example
// runs the sweep with TPP (the paper's fastest protocol) and CPP (the
// conventional baseline) and reports both the findings and how much shelf
// time the short polling vectors save.
#include <cstdlib>
#include <iostream>
#include <unordered_set>

#include "common/table.hpp"
#include "core/polling.hpp"

int main() {
  using namespace rfid;

  // 20,000 expected items; 35 have walked out of the building.
  constexpr std::size_t kInventory = 20000;
  constexpr std::size_t kStolen = 35;
  Xoshiro256ss rng(20160816);
  const tags::TagPopulation expected =
      tags::TagPopulation::uniform_random(kInventory, rng);

  std::unordered_set<TagId, TagIdHash> present;
  for (const tags::Tag& tag : expected) present.insert(tag.id());
  std::vector<TagId> stolen;
  for (std::size_t i = 0; i < kStolen; ++i) {
    const TagId victim = expected[rng.below(kInventory)].id();
    if (present.erase(victim) > 0) stolen.push_back(victim);
  }

  sim::SessionConfig config;
  config.info_bits = 1;  // presence bit
  config.seed = 42;

  std::cout << "Warehouse sweep: " << kInventory << " expected items, "
            << stolen.size() << " actually missing\n\n";

  TablePrinter table({"protocol", "missing found", "exact match",
                      "sweep time (s)", "reader bits/tag"});
  for (const core::ProtocolKind kind :
       {core::ProtocolKind::kTpp, core::ProtocolKind::kHpp,
        core::ProtocolKind::kCpp}) {
    const auto report = core::find_missing_tags(kind, expected, present,
                                                config);
    if (!report.exact) {
      std::cerr << "missing-tag set mismatch for "
                << protocols::to_string(kind) << '\n';
      return EXIT_FAILURE;
    }
    table.add_row({report.result.protocol,
                   std::to_string(report.missing.size()),
                   report.exact ? "yes" : "NO",
                   TablePrinter::num(report.result.exec_time_s()),
                   TablePrinter::num(report.result.avg_vector_bits())});
  }
  table.print(std::cout);

  std::cout << "\nFirst few flagged EPCs (TPP sweep):\n";
  const auto tpp_report =
      core::find_missing_tags(core::ProtocolKind::kTpp, expected, present,
                              config);
  for (std::size_t i = 0;
       i < std::min<std::size_t>(5, tpp_report.missing.size()); ++i)
    std::cout << "  " << tpp_report.missing[i].to_hex() << '\n';
  std::cout << "\nTPP sweeps the whole warehouse ~8x faster than"
               " conventional polling\nwhile identifying exactly the same"
               " missing set.\n";
  return EXIT_SUCCESS;
}
