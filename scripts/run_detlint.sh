#!/usr/bin/env bash
# Deprecated shim: detlint grew into rfidlint (tools/rfidlint), which keeps
# every detlint rule as its determinism analyzer and adds layering,
# hot-path-allocation, RNG-purity and phase-accounting analyzers. This
# wrapper keeps old CI wiring and muscle memory working; call
# scripts/run_rfidlint.sh directly in new code.
echo "run_detlint.sh is deprecated; forwarding to run_rfidlint.sh" >&2
exec "$(dirname "$0")/run_rfidlint.sh" "$@"
