#!/usr/bin/env bash
# Determinism-lint gate: runs tools/detlint over the repo's src/ tree and
# then self-checks the linter against its violation fixtures, so a linter
# that silently stopped matching (rule regression, tokenizer bug) cannot
# pass CI by finding nothing. Wired into the `detlint` CI job; run
# standalone as
#
#   scripts/run_detlint.sh [BIN_DIR]
#
# where BIN_DIR is the CMake binary dir holding tools/detlint/ (default:
# build). Exits 0 when src/ is clean AND every violation fixture still
# trips; nonzero otherwise.
set -euo pipefail

bin_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
detlint="$bin_dir/tools/detlint/detlint"

if [ ! -x "$detlint" ]; then
  echo "run_detlint: missing $detlint (build the detlint target first," \
    "e.g. cmake --build $bin_dir --target detlint)" >&2
  exit 1
fi

status=0

# 1. The repo itself must be clean (allowlist pragmas included).
if ! "$detlint" --root "$repo_root"; then
  echo "run_detlint: findings in $repo_root/src (see above)" >&2
  status=1
fi

# 2. Every violation fixture must still produce findings. clean.cpp and
# allow_pragma.cpp are the two fixtures the linter must accept.
fixture_dir="$repo_root/tools/detlint/fixtures"
for fixture in "$fixture_dir"/*.cpp; do
  name="$(basename "$fixture")"
  case "$name" in
    clean.cpp|allow_pragma.cpp)
      if ! "$detlint" "$fixture" > /dev/null; then
        echo "run_detlint: self-check failed — $name should be clean" >&2
        status=1
      fi
      ;;
    *)
      if "$detlint" "$fixture" > /dev/null; then
        echo "run_detlint: self-check failed — $name no longer trips" \
          "its rule (dead linter?)" >&2
        status=1
      fi
      ;;
  esac
done

[ "$status" -eq 0 ] || exit "$status"
echo "run_detlint: OK (src/ clean, all violation fixtures still trip)"
