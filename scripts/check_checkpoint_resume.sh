#!/usr/bin/env bash
# Crash-consistency gate for simserved's checkpoint/resume: SIGKILL the
# daemon mid-run (no graceful shutdown path executes — the checkpoint on
# disk is whatever the last epoch-boundary atomic rename left there),
# restart it with the same flags, and require the resumed run's final
# metrics to be BYTE-identical to an uninterrupted run at the same epoch
# target. Runs twice: once fault-free, once with injected reader crashes
# (--crash-epochs), which additionally proves crash replay never perturbs
# the completed folds.
#
#   scripts/check_checkpoint_resume.sh [BIN_DIR]
#
# BIN_DIR is the CMake binary dir holding tools/ (default: build).
set -euo pipefail

bin_dir="${1:-build}"
simserved="$bin_dir/tools/simserved/simserved"
if [ ! -x "$simserved" ]; then
  echo "check_checkpoint_resume: missing $simserved (build with RFID_BUILD_TOOLS=ON)" >&2
  exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

readers=3
tags=64
seed=20260809
epochs=6

run_case() {
  local tag="$1" crash_flags_str="$2"
  local crash_flags=()
  [ -n "$crash_flags_str" ] && crash_flags=($crash_flags_str)
  local ck="$workdir/ck-$tag" ref="$workdir/ref-$tag.json" \
    resumed="$workdir/resumed-$tag.json"
  mkdir -p "$ck" "$workdir/ck-$tag-ref"

  # Reference: uninterrupted run to the per-reader epoch target.
  "$simserved" --readers $readers --tags $tags --seed $seed \
    --epochs $epochs --throttle-us 0 --port 0 "${crash_flags[@]}" \
    --checkpoint-dir "$workdir/ck-$tag-ref" --final-metrics "$ref" \
    > /dev/null

  # Victim: throttled so SIGKILL lands mid-run, killed hard, then resumed
  # with identical flags. Repeat the kill if the victim finished before the
  # signal landed (tiny machines vary); one mid-run kill is all we need.
  local killed=0 attempt
  for attempt in 1 2 3; do
    rm -rf "$ck"; mkdir -p "$ck"
    "$simserved" --readers $readers --tags $tags --seed $seed \
      --epochs $epochs --throttle-us $((attempt * 20000)) --port 0 \
      "${crash_flags[@]}" --checkpoint-dir "$ck" > /dev/null 2>&1 &
    local pid=$!
    sleep 0.8
    if kill -KILL "$pid" 2>/dev/null; then
      wait "$pid" 2>/dev/null || true
      killed=1
      break
    fi
    wait "$pid" 2>/dev/null || true
  done
  if [ "$killed" -ne 1 ]; then
    echo "check_checkpoint_resume[$tag]: could not catch the daemon mid-run" >&2
    exit 1
  fi

  "$simserved" --readers $readers --tags $tags --seed $seed \
    --epochs $epochs --throttle-us 0 --port 0 "${crash_flags[@]}" \
    --checkpoint-dir "$ck" --final-metrics "$resumed" \
    > "$workdir/resume-$tag.log" 2>&1 \
    || { cat "$workdir/resume-$tag.log" >&2; exit 1; }

  if ! cmp -s "$ref" "$resumed"; then
    echo "check_checkpoint_resume[$tag]: resumed final metrics differ from" \
      "the uninterrupted run:" >&2
    cmp "$ref" "$resumed" >&2 || true
    diff "$ref" "$resumed" >&2 || true
    exit 1
  fi
}

run_case clean ""
run_case crashy "--crash-epochs 2"

# Cross-check the two cases: injected reader crashes replay epochs but must
# not change what the completed folds contain.
if ! cmp -s "$workdir/ref-clean.json" "$workdir/ref-crashy.json"; then
  echo "check_checkpoint_resume: crash injection perturbed the completed" \
    "folds (clean vs crashy final metrics differ)" >&2
  diff "$workdir/ref-clean.json" "$workdir/ref-crashy.json" >&2 || true
  exit 1
fi

echo "check_checkpoint_resume: OK (SIGKILL + resume byte-identical to" \
  "uninterrupted, fault-free and crash-injected)"
