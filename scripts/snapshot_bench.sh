#!/usr/bin/env bash
# Appends one perf-trajectory snapshot of a bench binary to a BENCH_*.json
# history at the repo root, so successive PRs accumulate comparable
# datapoints (same bench, same schema) instead of overwriting each other.
# Each snapshot records the commit, the bench CSV rows, and the manifest
# sidecar (seeds, workloads, compiler) as provenance.
#
#   scripts/snapshot_bench.sh [BIN_DIR] [BENCH] [OUT_NAME]
#
# BIN_DIR is the CMake binary dir holding bench/ (default: build); BENCH is
# the bench binary name (default: bench_round_engine); OUT_NAME is the
# history file at the repo root (default: BENCH_round_engine.json). The
# fleet throughput history is snapshotted with:
#
#   scripts/snapshot_bench.sh build multi_reader_scaling BENCH_fleet.json
#
# Honours RFID_RUNS / RFID_MAX_N / RFID_BENCH_MAX_N like the bench itself;
# the snapshot records them. Any self-gate the bench carries stays live: a
# nonzero exit fails this script before anything is written.
set -euo pipefail

bin_dir="${1:-build}"
bench_name="${2:-bench_round_engine}"
out_name="${3:-BENCH_round_engine.json}"
bench="$bin_dir/bench/$bench_name"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out="$repo_root/$out_name"

if [ ! -x "$bench" ]; then
  echo "snapshot_bench: missing $bench (build with RFID_BUILD_BENCH=ON)" >&2
  exit 1
fi
if ! command -v python3 > /dev/null 2>&1; then
  echo "snapshot_bench: python3 is required to assemble the snapshot" >&2
  exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# The bench exits nonzero when its self-checks fail (round_engine's
# allocation gate, the fleet bench's verification) — let that propagate
# (set -e): a regressing build must not produce a snapshot.
RFID_CSV_DIR="$workdir" "$bench" > "$workdir/stdout.txt"

commit="$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unknown)"

python3 - "$out" "$workdir" "$commit" "$bench_name" <<'PY'
import csv, json, sys, time
out_path, workdir, commit, bench_name = sys.argv[1:5]

with open(f"{workdir}/{bench_name}.csv") as f:
    rows = list(csv.DictReader(f))
with open(f"{workdir}/{bench_name}.manifest.json") as f:
    manifest = json.load(f)

snapshot = {
    "commit": commit,
    "unix_time": int(time.time()),
    "rows": rows,
    "manifest": manifest,
}

try:
    with open(out_path) as f:
        history = json.load(f)
    assert isinstance(history.get("snapshots"), list)
except (FileNotFoundError, json.JSONDecodeError, AssertionError):
    history = {"bench": bench_name, "snapshots": []}

# One snapshot per commit: re-running the bench on the same tree replaces
# the stale datapoint instead of inflating the history with duplicates
# (an "unknown" commit — no git — is never deduped).
if commit != "unknown":
    before = len(history["snapshots"])
    history["snapshots"] = [
        s for s in history["snapshots"] if s.get("commit") != commit
    ]
    if len(history["snapshots"]) != before:
        print(f"snapshot_bench: replacing prior snapshot for commit {commit}")

history["snapshots"].append(snapshot)
with open(out_path, "w") as f:
    json.dump(history, f, indent=2)
    f.write("\n")

print(f"snapshot_bench: appended commit {commit} "
      f"({len(history['snapshots'])} snapshot(s) in {out_path})")
PY
