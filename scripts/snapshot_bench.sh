#!/usr/bin/env bash
# Appends one perf-trajectory snapshot of the RoundEngine microbench to
# BENCH_round_engine.json at the repo root, so successive PRs accumulate
# comparable datapoints (same bench, same schema) instead of overwriting
# each other. Each snapshot records the commit, the bench CSV rows, and the
# manifest sidecar (seeds, workloads, compiler) as provenance.
#
#   scripts/snapshot_bench.sh [BIN_DIR]
#
# BIN_DIR is the CMake binary dir holding bench/ (default: build). Honours
# RFID_RUNS / RFID_MAX_N like the bench itself; the snapshot records them.
# The bench's own allocation gate stays live: a nonzero steady-state
# allocations/round fails this script before anything is written.
set -euo pipefail

bin_dir="${1:-build}"
bench="$bin_dir/bench/bench_round_engine"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
out="$repo_root/BENCH_round_engine.json"

if [ ! -x "$bench" ]; then
  echo "snapshot_bench: missing $bench (build with RFID_BUILD_BENCH=ON)" >&2
  exit 1
fi
if ! command -v python3 > /dev/null 2>&1; then
  echo "snapshot_bench: python3 is required to assemble the snapshot" >&2
  exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# The bench exits nonzero when steady-state rounds allocate — let that
# propagate (set -e): a regressing build must not produce a snapshot.
RFID_CSV_DIR="$workdir" "$bench" > "$workdir/stdout.txt"

commit="$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unknown)"

python3 - "$out" "$workdir" "$commit" <<'PY'
import csv, json, sys, time
out_path, workdir, commit = sys.argv[1], sys.argv[2], sys.argv[3]

with open(f"{workdir}/bench_round_engine.csv") as f:
    rows = list(csv.DictReader(f))
with open(f"{workdir}/bench_round_engine.manifest.json") as f:
    manifest = json.load(f)

snapshot = {
    "commit": commit,
    "unix_time": int(time.time()),
    "rows": rows,
    "manifest": manifest,
}

try:
    with open(out_path) as f:
        history = json.load(f)
    assert isinstance(history.get("snapshots"), list)
except (FileNotFoundError, json.JSONDecodeError, AssertionError):
    history = {"bench": "bench_round_engine", "snapshots": []}

# One snapshot per commit: re-running the bench on the same tree replaces
# the stale datapoint instead of inflating the history with duplicates
# (an "unknown" commit — no git — is never deduped).
if commit != "unknown":
    before = len(history["snapshots"])
    history["snapshots"] = [
        s for s in history["snapshots"] if s.get("commit") != commit
    ]
    if len(history["snapshots"]) != before:
        print(f"snapshot_bench: replacing prior snapshot for commit {commit}")

history["snapshots"].append(snapshot)
with open(out_path, "w") as f:
    json.dump(history, f, indent=2)
    f.write("\n")

print(f"snapshot_bench: appended commit {commit} "
      f"({len(history['snapshots'])} snapshot(s) in {out_path})")
PY
