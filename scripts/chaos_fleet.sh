#!/usr/bin/env bash
# Randomized reader-fleet chaos: alternate between (a) fault_demo runs
# under random seeds — its act-5 fleet sweeps crash/stall/restart readers
# and self-verifies exact delivered-or-listed accounting — and (b)
# simserved checkpoint kill/resume cycles under random fleet shapes and
# crash cadences, comparing the resumed run's final metrics byte-for-byte
# against an uninterrupted reference. Intended for an ASan+UBSan build so
# memory bugs in the supervisor/handoff/checkpoint machinery surface too.
# Every iteration logs its parameters up front — to replay a failure,
# rerun the printed command.
#
#   scripts/chaos_fleet.sh [BIN_DIR] [BUDGET_SECONDS] [CHAOS_SEED]
#
# BIN_DIR default: build. BUDGET_SECONDS default: 300 (the nightly CI
# budget). CHAOS_SEED seeds the parameter generator itself (default:
# derived from the clock) so a whole run is reproducible, not just one
# iteration.
set -euo pipefail

bin_dir="${1:-build}"
budget_s="${2:-300}"
chaos_seed="${3:-$(date +%s)}"
demo_bin="$bin_dir/examples/fault_demo"
simserved="$bin_dir/tools/simserved/simserved"
if [ ! -x "$demo_bin" ]; then
  echo "chaos_fleet: missing $demo_bin (build with RFID_BUILD_EXAMPLES=ON)" >&2
  exit 1
fi
if [ ! -x "$simserved" ]; then
  echo "chaos_fleet: missing $simserved (build with RFID_BUILD_TOOLS=ON)" >&2
  exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

echo "chaos_fleet: CHAOS_SEED=$chaos_seed budget=${budget_s}s"
echo "chaos_fleet: replay the whole run with:" \
  "scripts/chaos_fleet.sh $bin_dir $budget_s $chaos_seed"

# Deterministic parameter stream: a tiny LCG over the chaos seed. bash
# arithmetic is 64-bit signed, so mask to 31 bits after each step. next()
# must mutate `state` in THIS shell, so it returns via the global `draw`
# rather than echoing from a subshell.
state=$((chaos_seed & 0x7FFFFFFF))
draw=0
next() {
  state=$(((state * 1103515245 + 12345) & 0x7FFFFFFF))
  draw=$((state % $1))
}

# Arm (a): one fault_demo sweep. The demo's exit status IS the oracle —
# act 5's fleet asserts every tag is delivered or listed, and the earlier
# acts verify payload integrity under corruption.
run_demo() {
  next 100000; local seed=$((1 + draw))
  next 15; local ber="0.00$((1 + draw))"
  next 56; local seg=$((8 + draw))
  echo "chaos_fleet[$iter]: $demo_bin --ber $ber --segment-bits $seg --seed $seed"
  if ! "$demo_bin" --ber "$ber" --segment-bits "$seg" --seed "$seed" \
      > /dev/null; then
    echo "chaos_fleet: FAILURE at iteration $iter" >&2
    echo "chaos_fleet: replay: $demo_bin --ber $ber" \
      "--segment-bits $seg --seed $seed" >&2
    exit 1
  fi
}

# Arm (b): a simserved checkpoint kill/resume cycle. Random fleet shape,
# crash cadence, and checkpoint stride; SIGKILL lands mid-run, the daemon
# restarts from whatever the last epoch-boundary rename left on disk, and
# the resumed final metrics must match an uninterrupted reference byte
# for byte.
run_daemon_cycle() {
  # Power-of-two moduli would sample only the LCG's short-period low bits
  # (see the arm chooser above), so draw wide and divide down instead.
  next 3; local readers=$((2 + draw))
  next 4000; local tags=$((32 * (1 + draw / 1000)))
  next 100000; local seed=$((1 + draw))
  next 5; local epochs=$((4 + draw))
  next 3; local crash=$((draw == 0 ? 0 : draw + 1))  # 0 (off), 2, or 3
  next 2000; local every=$((1 + draw / 1000))
  local base="$simserved --readers $readers --tags $tags --seed $seed \
--epochs $epochs --port 0 --crash-epochs $crash --checkpoint-every $every"
  echo "chaos_fleet[$iter]: $base  (kill/resume cycle)"

  local ck="$workdir/ck" ref="$workdir/ref.json" resumed="$workdir/resumed.json"
  rm -rf "$ck" "$workdir/ck-ref"; mkdir -p "$ck" "$workdir/ck-ref"
  $base --throttle-us 0 --checkpoint-dir "$workdir/ck-ref" \
    --final-metrics "$ref" > /dev/null

  # Throttle the victim so the kill lands mid-run; if it finished first,
  # the resume below degenerates to a fresh run, which must still match.
  $base --throttle-us 20000 --checkpoint-dir "$ck" > /dev/null 2>&1 &
  local pid=$!
  next 7; sleep "0.$((2 + draw))"
  kill -KILL "$pid" 2>/dev/null || true
  wait "$pid" 2>/dev/null || true

  if ! $base --throttle-us 0 --checkpoint-dir "$ck" \
      --final-metrics "$resumed" > "$workdir/resume.log" 2>&1; then
    echo "chaos_fleet: FAILURE at iteration $iter (resume refused)" >&2
    cat "$workdir/resume.log" >&2
    echo "chaos_fleet: replay: $base  (kill/resume cycle)" >&2
    exit 1
  fi
  if ! cmp -s "$ref" "$resumed"; then
    echo "chaos_fleet: FAILURE at iteration $iter (resumed metrics" \
      "diverge from the uninterrupted run)" >&2
    diff "$ref" "$resumed" >&2 || true
    echo "chaos_fleet: replay: $base  (kill/resume cycle)" >&2
    exit 1
  fi
}

deadline=$((SECONDS + budget_s))
iter=0
while [ "$SECONDS" -lt "$deadline" ]; do
  iter=$((iter + 1))
  # Arm choice from a wide draw, not `% 2`: this LCG's low bit strictly
  # alternates, and each arm makes a fixed number of draws, so a parity
  # test would pick the same arm forever.
  next 1000
  if [ "$draw" -lt 500 ]; then run_demo; else run_daemon_cycle; fi
done

echo "chaos_fleet: OK ($iter iterations, no verification, resume, or" \
  "sanitizer failures)"
