#!/usr/bin/env bash
# CI perf-regression gate for the RoundEngine microbench and the sharded
# fleet throughput bench.
#
# Phase 1 runs bench_round_engine fresh, then compares every gated engine
# row (keyed by mode/protocol/n) against the newest snapshot committed in
# BENCH_round_engine.json. Phase 2 runs multi_reader_scaling and compares
# every fleet row (keyed by readers/channels/n, metric tags/sec) against
# BENCH_fleet.json. A row that drops more than its tolerance fails the
# gate; rows that exist on only one side are reported but never fail
# (protocols, backends and fleet points come and go). Either phase with
# zero overlapping rows fails — a comparison that skips everything
# verifies nothing.
#
#   scripts/check_bench_regression.sh [BIN_DIR]
#
# BIN_DIR is the CMake binary dir holding bench/ (default: build).
# Honours RFID_RUNS / RFID_MAX_N / RFID_BENCH_MAX_N like the benches; any
# knob left unset is taken from the committed snapshot's manifest so the
# fresh run measures the same workload.
# Environment knobs:
#   RFID_GATE_TOLERANCE        allowed fractional drop, engine rows
#                              (default 0.15)
#   RFID_FLEET_GATE_TOLERANCE  allowed fractional drop, fleet rows
#                              (default 0.30 — wall-clock throughput at
#                              the million-tag scale is noisier)
#   RFID_GATE_ARTIFACT_DIR     where to copy the fresh CSVs + manifest
#                              sidecars for upload (default: no copy)
set -euo pipefail

bin_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
tolerance="${RFID_GATE_TOLERANCE:-0.15}"
fleet_tolerance="${RFID_FLEET_GATE_TOLERANCE:-0.30}"
artifact_dir="${RFID_GATE_ARTIFACT_DIR:-}"

if ! command -v python3 > /dev/null 2>&1; then
  echo "check_bench_regression: python3 is required" >&2
  exit 1
fi

# Default the workload knobs to what the committed snapshot ran with —
# rows are keyed by population size, so a mismatched cap would silently
# skip every comparison.
defaults_from_manifest() {  # $1 = baseline json, $2.. = env var names
  eval "$(python3 - "$@" <<'PY'
import json, sys
snapshots = json.load(open(sys.argv[1])).get("snapshots", [])
env = snapshots[-1].get("manifest", {}).get("env", {}) if snapshots else {}
for var in sys.argv[2:]:
    value = env.get(var, "")
    if value.isdigit():
        print(f'export {var}="${{{var}:-{value}}}"')
PY
)"
}

run_bench() {  # $1 = bench name
  local bench="$bin_dir/bench/$1"
  if [ ! -x "$bench" ]; then
    echo "check_bench_regression: missing $bench (build with RFID_BUILD_BENCH=ON)" >&2
    exit 1
  fi
  # The bench's own self-gates stay live: a build whose steady-state rounds
  # allocate, or whose fleet sweep fails verification, fails before any
  # throughput comparison. Name the offending row(s) on the way out — the
  # benches mark them with "NO" in the trailing verified column.
  local status=0
  RFID_CSV_DIR="$workdir" "$bench" > "$workdir/$1.stdout.txt" || status=$?
  if [ "$status" -ne 0 ]; then
    echo "check_bench_regression: $1 self-gate failed (exit $status)" >&2
    awk '$NF == "NO" { printf "  unverified row: readers=%s channels=%s n=%s\n", \
                              $1, $2, $3 }' \
        "$workdir/$1.stdout.txt" >&2
    exit "$status"
  fi
  if [ -n "$artifact_dir" ]; then
    mkdir -p "$artifact_dir"
    cp "$workdir/$1.csv" "$workdir/$1.manifest.json" \
       "$workdir/$1.stdout.txt" "$artifact_dir/"
  fi
}

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# --- Phase 1: RoundEngine throughput ----------------------------------
baseline="$repo_root/BENCH_round_engine.json"
if [ ! -f "$baseline" ]; then
  echo "check_bench_regression: no committed $baseline to compare against" >&2
  exit 1
fi
defaults_from_manifest "$baseline" RFID_RUNS RFID_MAX_N
run_bench bench_round_engine

python3 - "$baseline" "$workdir/bench_round_engine.csv" "$tolerance" <<'PY'
import csv, json, sys

baseline_path, fresh_csv, tolerance = sys.argv[1], sys.argv[2], float(sys.argv[3])


def throughput(cell):
    # "123456 ±789" (the JSON stores the ± as ±) -> 123456.0
    return float(cell.split("±")[0].replace(" ", ""))


def engine_rows(rows):
    keyed = {}
    for row in rows:
        if row.get("mode") != "engine":
            continue
        keyed[(row["protocol"], row["n"])] = throughput(row["rounds/sec"])
    return keyed


with open(baseline_path) as f:
    history = json.load(f)
snapshots = history.get("snapshots", [])
if not snapshots:
    sys.exit("check_bench_regression: baseline has no snapshots")
base = snapshots[-1]
base_rows = engine_rows(base.get("rows", []))

with open(fresh_csv) as f:
    fresh_rows = engine_rows(list(csv.DictReader(f)))

print(f"baseline: commit {base.get('commit', '?')} "
      f"({len(base_rows)} engine row(s)); tolerance {tolerance:.0%}")

failures = []
compared = 0
for key in sorted(base_rows):
    label = f"{key[0]} n={key[1]}"
    if key not in fresh_rows:
        print(f"  SKIP {label}: row absent from this build")
        continue
    compared += 1
    old, new = base_rows[key], fresh_rows[key]
    ratio = new / old if old > 0 else float("inf")
    verdict = "FAIL" if ratio < 1.0 - tolerance else "ok"
    print(f"  {verdict:4} {label}: {old:.0f} -> {new:.0f} rounds/sec "
          f"({ratio - 1.0:+.1%})")
    if verdict == "FAIL":
        failures.append(label)
for key in sorted(set(fresh_rows) - set(base_rows)):
    print(f"  NEW  {key[0]} n={key[1]}: {fresh_rows[key]:.0f} rounds/sec "
          f"(no baseline)")

if failures:
    sys.exit("check_bench_regression: regression beyond tolerance in: "
             + ", ".join(failures))
if compared == 0:
    sys.exit("check_bench_regression: no overlapping engine rows — "
             "workload mismatch between this run and the snapshot?")
print(f"check_bench_regression: all {compared} engine row(s) "
      "within tolerance")
PY

# --- Phase 2: sharded fleet throughput --------------------------------
fleet_baseline="$repo_root/BENCH_fleet.json"
if [ ! -f "$fleet_baseline" ]; then
  echo "check_bench_regression: no committed $fleet_baseline to compare against" >&2
  exit 1
fi
defaults_from_manifest "$fleet_baseline" RFID_MAX_N RFID_BENCH_MAX_N
run_bench multi_reader_scaling

python3 - "$fleet_baseline" "$workdir/multi_reader_scaling.csv" \
    "$fleet_tolerance" <<'PY'
import csv, json, sys

baseline_path, fresh_csv, tolerance = sys.argv[1], sys.argv[2], float(sys.argv[3])


def fleet_rows(rows):
    keyed = {}
    for row in rows:
        if row.get("mode") != "fleet":
            continue
        keyed[(row["readers"], row["channels"], row["n"])] = \
            float(row["tags_per_sec"])
    return keyed


with open(baseline_path) as f:
    history = json.load(f)
snapshots = history.get("snapshots", [])
if not snapshots:
    sys.exit("check_bench_regression: fleet baseline has no snapshots")
base = snapshots[-1]
base_rows = fleet_rows(base.get("rows", []))

with open(fresh_csv) as f:
    fresh_rows = fleet_rows(list(csv.DictReader(f)))

print(f"fleet baseline: commit {base.get('commit', '?')} "
      f"({len(base_rows)} fleet row(s)); tolerance {tolerance:.0%}")

failures = []
compared = 0
for key in sorted(base_rows):
    label = f"readers={key[0]} channels={key[1]} n={key[2]}"
    if key not in fresh_rows:
        print(f"  SKIP {label}: row absent from this build")
        continue
    compared += 1
    old, new = base_rows[key], fresh_rows[key]
    ratio = new / old if old > 0 else float("inf")
    verdict = "FAIL" if ratio < 1.0 - tolerance else "ok"
    print(f"  {verdict:4} {label}: {old:.0f} -> {new:.0f} tags/sec "
          f"({ratio - 1.0:+.1%})")
    if verdict == "FAIL":
        failures.append(label)
for key in sorted(set(fresh_rows) - set(base_rows)):
    print(f"  NEW  readers={key[0]} channels={key[1]} n={key[2]}: "
          f"{fresh_rows[key]:.0f} tags/sec (no baseline)")

if failures:
    sys.exit("check_bench_regression: fleet regression beyond tolerance in: "
             + ", ".join(failures))
if compared == 0:
    sys.exit("check_bench_regression: no overlapping fleet rows — "
             "workload mismatch between this run and the snapshot?")
print(f"check_bench_regression: all {compared} fleet row(s) "
      "within tolerance")
PY
