#!/usr/bin/env bash
# Randomized corruption fuzz: hammer the CRC-framed downlink path with
# random BER / segment-size / seed combinations and let fault_demo's
# end-to-end verification (every tag collected or listed in
# undelivered_ids, payloads bit-exact) be the oracle. Intended to run
# under an ASan+UBSan build so memory bugs in the framing/retransmission/
# degradation machinery surface too. Every iteration logs its parameters
# up front — to replay a failure, rerun the printed fault_demo command.
#
#   scripts/fuzz_corruption.sh [BIN_DIR] [BUDGET_SECONDS] [FUZZ_SEED]
#
# BIN_DIR default: build. BUDGET_SECONDS default: 300 (the nightly CI
# budget). FUZZ_SEED seeds the parameter generator itself (default:
# derived from the clock) so a whole run is reproducible, not just one
# iteration.
set -euo pipefail

bin_dir="${1:-build}"
budget_s="${2:-300}"
fuzz_seed="${3:-$(date +%s)}"
demo_bin="$bin_dir/examples/fault_demo"
if [ ! -x "$demo_bin" ]; then
  echo "fuzz_corruption: missing $demo_bin (build with RFID_BUILD_EXAMPLES=ON)" >&2
  exit 1
fi

echo "fuzz_corruption: FUZZ_SEED=$fuzz_seed budget=${budget_s}s"
echo "fuzz_corruption: replay the whole run with:" \
  "scripts/fuzz_corruption.sh $bin_dir $budget_s $fuzz_seed"

# Deterministic parameter stream: a tiny LCG over the fuzz seed. bash
# arithmetic is 64-bit signed, so mask to 31 bits after each step. next()
# must mutate `state` in THIS shell, so it returns via the global `draw`
# rather than echoing from a subshell.
state=$((fuzz_seed & 0x7FFFFFFF))
draw=0
next() {
  state=$(((state * 1103515245 + 12345) & 0x7FFFFFFF))
  draw=$((state % $1))
}

deadline=$((SECONDS + budget_s))
iter=0
while [ "$SECONDS" -lt "$deadline" ]; do
  iter=$((iter + 1))
  # BER spans the whole qualitative range: mostly survivable (1e-4..2e-2),
  # sometimes the degradation crossover (5e-2..8e-2), rarely hopeless.
  next 10; bucket=$draw
  case "$bucket" in
    0|1|2|3|4|5) next 9; a=$((1 + draw)); next 10; ber="0.000$a$draw" ;;
    6|7) next 2; a=$((1 + draw)); next 10; ber="0.0$a$draw" ;;
    8) next 4; ber="0.0$((5 + draw))" ;;
    *) next 4; ber="0.$((1 + draw))" ;;
  esac
  next 120; seg=$((8 + draw))   # 8..127-bit payloads, off-power-of-two too
  next 100000; seed=$((1 + draw))
  echo "fuzz_corruption[$iter]: $demo_bin --ber $ber --segment-bits $seg --seed $seed"
  if ! "$demo_bin" --ber "$ber" --segment-bits "$seg" --seed "$seed" \
      > /dev/null; then
    echo "fuzz_corruption: FAILURE at iteration $iter" >&2
    echo "fuzz_corruption: replay: $demo_bin --ber $ber" \
      "--segment-bits $seg --seed $seed" >&2
    exit 1
  fi
done

echo "fuzz_corruption: OK ($iter iterations, no verification or" \
  "sanitizer failures)"
