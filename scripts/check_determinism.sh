#!/usr/bin/env bash
# Determinism gate: protocol_comparison must produce byte-identical output —
# the human-readable table AND the machine-readable JSON report — whether
# the trials run serially or across a worker pool. This is the repo's
# seed-determinism contract (per-trial seed-derived RNG streams, trial-order
# reductions); any nondeterministic merge or shared RNG shows up here as a
# byte diff. Wired into ctest with label `integration`; run standalone as
#
#   scripts/check_determinism.sh [BIN_DIR]
#
# where BIN_DIR is the CMake binary dir holding examples/ (default: build).
set -euo pipefail

bin_dir="${1:-build}"
cmp_bin="$bin_dir/examples/protocol_comparison"
if [ ! -x "$cmp_bin" ]; then
  echo "check_determinism: missing $cmp_bin (build with RFID_BUILD_EXAMPLES=ON)" >&2
  exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

status=0

# Two stanzas: the clean channel, and the canned fault workload (bursty
# Gilbert–Elliott reply loss + downlink BER + CRC framing + recovery via
# --fault). The fault path draws from per-trial fault RNG streams and
# charges retransmissions/recovery time, so it has its own ways to go
# nondeterministic under a pool — both stanzas must byte-match.
check_pair() {
  local tag="$1"; shift
  RFID_THREADS=0 "$cmp_bin" "$@" \
    --report-json "$workdir/$tag-serial.json" > "$workdir/$tag-serial.txt"
  RFID_THREADS=4 "$cmp_bin" "$@" \
    --report-json "$workdir/$tag-pooled.json" > "$workdir/$tag-pooled.txt"
  local ext
  for ext in json txt; do
    if ! cmp -s "$workdir/$tag-serial.$ext" "$workdir/$tag-pooled.$ext"; then
      echo "check_determinism[$tag]: serial and pooled .$ext outputs differ:" >&2
      # First differing byte (cmp reports 1-based byte and line), then the
      # textual diff for context. The byte offset is the useful part when
      # the divergence is inside a long report line.
      cmp "$workdir/$tag-serial.$ext" "$workdir/$tag-pooled.$ext" >&2 || true
      diff "$workdir/$tag-serial.$ext" "$workdir/$tag-pooled.$ext" >&2 || true
      status=1
    fi
  done
}

check_pair clean 800 4 3 HPP TPP
check_pair fault 800 4 3 HPP EHPP TPP ADAPT --fault

# Reader-fault stanza: fault_demo's act 5 runs the supervised fleet —
# reader crashes/stalls on their own named RNG streams, tag handoff,
# backoff restarts — and prints per-reader incident tables. The whole
# stdout (all five acts) must byte-match serial vs pooled, proving the
# reader-fault machinery keeps the seed-determinism contract too.
check_reader_faults() {
  local demo_bin="$bin_dir/examples/fault_demo"
  if [ ! -x "$demo_bin" ]; then
    echo "check_determinism: missing $demo_bin (build with RFID_BUILD_EXAMPLES=ON)" >&2
    status=1
    return
  fi
  RFID_THREADS=0 "$demo_bin" --seed 99 > "$workdir/fleet-serial.txt"
  RFID_THREADS=4 "$demo_bin" --seed 99 > "$workdir/fleet-pooled.txt"
  if ! cmp -s "$workdir/fleet-serial.txt" "$workdir/fleet-pooled.txt"; then
    echo "check_determinism[fleet]: serial and pooled fault_demo output differ:" >&2
    cmp "$workdir/fleet-serial.txt" "$workdir/fleet-pooled.txt" >&2 || true
    diff "$workdir/fleet-serial.txt" "$workdir/fleet-pooled.txt" >&2 || true
    status=1
  fi
}
check_reader_faults

# Sharded-fleet stanza: the deployment simulator at the million-tag scale —
# 1M tags across 64 readers on 8 channels with zone overlap and live churn.
# The report (stdout and JSON) must byte-match serial vs RFID_THREADS=4
# (reader-ordered merge fold) AND across shard counts (--shards 1 vs 7):
# the tick loop's parallel phase is reader-local, so the execution grain
# must never leak into the results.
check_fleet_sharding() {
  local sweep_bin="$bin_dir/examples/deployment_sweep"
  if [ ! -x "$sweep_bin" ]; then
    echo "check_determinism: missing $sweep_bin (build with RFID_BUILD_EXAMPLES=ON)" >&2
    status=1
    return
  fi
  local args=(--tags 1000000 --readers 64 --channels 8
              --overlap 0.1 --churn 0.001 --seed 11)
  RFID_THREADS=0 "$sweep_bin" "${args[@]}" --shards 1 \
    --report-json "$workdir/sweep-serial.json" > "$workdir/sweep-serial.txt"
  RFID_THREADS=4 "$sweep_bin" "${args[@]}" \
    --report-json "$workdir/sweep-pooled.json" > "$workdir/sweep-pooled.txt"
  RFID_THREADS=4 "$sweep_bin" "${args[@]}" --shards 7 \
    --report-json "$workdir/sweep-shard7.json" > "$workdir/sweep-shard7.txt"
  local variant ext
  for variant in pooled shard7; do
    for ext in json txt; do
      if ! cmp -s "$workdir/sweep-serial.$ext" "$workdir/sweep-$variant.$ext"; then
        echo "check_determinism[fleet-shard]: serial and $variant .$ext outputs differ:" >&2
        cmp "$workdir/sweep-serial.$ext" "$workdir/sweep-$variant.$ext" >&2 || true
        diff "$workdir/sweep-serial.$ext" "$workdir/sweep-$variant.$ext" >&2 || true
        status=1
      fi
    done
  done
}
check_fleet_sharding
[ "$status" -eq 0 ] || exit "$status"

echo "check_determinism: OK (serial == RFID_THREADS=4, byte-identical," \
  "clean and fault channels, supervised reader fleet, sharded deployment)"
