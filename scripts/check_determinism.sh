#!/usr/bin/env bash
# Determinism gate: protocol_comparison must produce byte-identical output —
# the human-readable table AND the machine-readable JSON report — whether
# the trials run serially or across a worker pool. This is the repo's
# seed-determinism contract (per-trial seed-derived RNG streams, trial-order
# reductions); any nondeterministic merge or shared RNG shows up here as a
# byte diff. Wired into ctest with label `integration`; run standalone as
#
#   scripts/check_determinism.sh [BIN_DIR]
#
# where BIN_DIR is the CMake binary dir holding examples/ (default: build).
set -euo pipefail

bin_dir="${1:-build}"
cmp_bin="$bin_dir/examples/protocol_comparison"
if [ ! -x "$cmp_bin" ]; then
  echo "check_determinism: missing $cmp_bin (build with RFID_BUILD_EXAMPLES=ON)" >&2
  exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

args=(800 4 3 HPP TPP)
RFID_THREADS=0 "$cmp_bin" "${args[@]}" \
  --report-json "$workdir/serial.json" > "$workdir/serial.txt"
RFID_THREADS=4 "$cmp_bin" "${args[@]}" \
  --report-json "$workdir/pooled.json" > "$workdir/pooled.txt"

status=0
for ext in json txt; do
  if ! cmp -s "$workdir/serial.$ext" "$workdir/pooled.$ext"; then
    echo "check_determinism: serial and pooled .$ext outputs differ:" >&2
    diff "$workdir/serial.$ext" "$workdir/pooled.$ext" >&2 || true
    status=1
  fi
done
[ "$status" -eq 0 ] || exit "$status"

echo "check_determinism: OK (serial == RFID_THREADS=4, byte-identical)"
