#!/usr/bin/env bash
# Static-analysis gate: runs tools/rfidlint (layering, hot-path allocation,
# RNG purity, phase accounting, determinism) over the repo's src/ tree plus
# tools/simserved, then self-checks every analyzer against its fixtures so a
# linter that silently stopped matching (rule regression, tokenizer bug)
# cannot pass CI by finding nothing. Wired into the `rfidlint` CI job; run
# standalone as
#
#   scripts/run_rfidlint.sh [BIN_DIR]
#
# where BIN_DIR is the CMake binary dir holding tools/rfidlint/ (default:
# build). Exits 0 when the repo is clean AND every violation fixture still
# trips its documented rule; nonzero otherwise.
set -euo pipefail

bin_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
rfidlint="$bin_dir/tools/rfidlint/rfidlint"

if [ ! -x "$rfidlint" ]; then
  echo "run_rfidlint: missing $rfidlint (build the rfidlint target first," \
    "e.g. cmake --build $bin_dir --target rfidlint)" >&2
  exit 1
fi

status=0

# 1. The repo itself must be clean (allow pragmas included). This uses the
# committed layer spec at tools/rfidlint/layers.spec.
if ! "$rfidlint" --root "$repo_root"; then
  echo "run_rfidlint: findings in $repo_root (see above)" >&2
  status=1
fi

# 2. Analyzer liveness: the clean fixtures must pass and every violation
# fixture must still trip. Fixtures sit outside src/, so the layer analyzer
# is off here (it gets its own tree-shaped fixtures below).
fixture_dir="$repo_root/tools/rfidlint/fixtures"
for fixture in "$fixture_dir"/*.cpp; do
  name="$(basename "$fixture")"
  case "$name" in
    clean.cpp | allow_pragma.cpp | *_clean.cpp)
      if ! "$rfidlint" --no-layers "$fixture" > /dev/null; then
        echo "run_rfidlint: self-check failed — $name should be clean" >&2
        status=1
      fi
      ;;
    legacy_pragma.cpp)
      # Old `detlint:` spelling still suppresses (exit 0) but must keep
      # earning its deprecation warning.
      if ! out="$("$rfidlint" --no-layers "$fixture")"; then
        echo "run_rfidlint: self-check failed — $name should pass with a" \
          "warning, not an error" >&2
        status=1
      fi
      case "${out:-}" in
        *legacy-pragma*) ;;
        *)
          echo "run_rfidlint: self-check failed — $name no longer warns" \
            "about the deprecated detlint: prefix" >&2
          status=1
          ;;
      esac
      ;;
    *)
      if "$rfidlint" --no-layers "$fixture" > /dev/null; then
        echo "run_rfidlint: self-check failed — $name no longer trips" \
          "its rule (dead analyzer?)" >&2
        status=1
      fi
      ;;
  esac
done

# 3. Layer-graph liveness against the miniature repo in fixtures/layer_tree:
# downward includes pass, upward and undeclared ones trip, and a malformed
# spec is rejected outright.
tree="$fixture_dir/layer_tree"
spec="$tree/layers.spec"
for file in src/common/ok.hpp src/sim/engine.hpp tools/probe.hpp; do
  if ! "$rfidlint" --root "$tree" --layers "$spec" "$tree/$file" \
      > /dev/null; then
    echo "run_rfidlint: self-check failed — layer_tree/$file should be" \
      "clean" >&2
    status=1
  fi
done
for file in src/common/upward.hpp src/sim/stray.hpp src/widgets/widget.hpp; do
  if "$rfidlint" --root "$tree" --layers "$spec" "$tree/$file" \
      > /dev/null; then
    echo "run_rfidlint: self-check failed — layer_tree/$file no longer" \
      "trips the layer analyzer" >&2
    status=1
  fi
done
if "$rfidlint" --root "$tree" --layers "$fixture_dir/layer_bad.spec" \
    "$tree/src/common/ok.hpp" > /dev/null; then
  echo "run_rfidlint: self-check failed — layer_bad.spec should be" \
    "rejected as malformed" >&2
  status=1
fi

[ "$status" -eq 0 ] || exit "$status"
echo "run_rfidlint: OK (repo clean, all violation fixtures still trip)"
