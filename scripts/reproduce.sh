#!/usr/bin/env bash
# Turnkey reproduction: build, run the full test suite, and regenerate every
# table/figure of the paper, leaving test_output.txt and bench_output.txt at
# the repo root. RFID_RUNS (default 5) controls Monte-Carlo averaging; the
# paper used 100.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo; echo "##### $(basename "$b")"; "$b"
done 2>&1 | tee bench_output.txt
echo
echo "Done. See EXPERIMENTS.md for paper-vs-measured commentary."
