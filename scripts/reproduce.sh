#!/usr/bin/env bash
# Turnkey reproduction: build, run the full test suite, and regenerate every
# table/figure of the paper, leaving test_output.txt and bench_output.txt at
# the repo root. RFID_RUNS (default 5) controls Monte-Carlo averaging; the
# paper used 100.
set -euo pipefail
cd "$(dirname "$0")/.."

# Respect an already-configured build tree (whatever its generator); only a
# fresh configure picks Ninja, and only when Ninja is actually installed.
if [ ! -f build/CMakeCache.txt ]; then
  if command -v ninja > /dev/null 2>&1; then
    cmake -B build -G Ninja
  else
    cmake -B build
  fi
fi
cmake --build build --parallel

ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

# Fail loudly when the build produced no bench binaries: an empty
# bench_output.txt used to pass silently and hide a misconfigured build.
shopt -s nullglob
runnable=()
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] && runnable+=("$b")
done
if [ "${#runnable[@]}" -eq 0 ]; then
  echo "reproduce: no bench binaries under build/bench" \
       "(build failed or RFID_BUILD_BENCH=OFF)" >&2
  exit 1
fi
{
  for b in "${runnable[@]}"; do
    echo
    echo "##### $(basename "$b")"
    "$b"
  done
} 2>&1 | tee bench_output.txt
echo
echo "Done. See EXPERIMENTS.md for paper-vs-measured commentary."
