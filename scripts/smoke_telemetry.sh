#!/usr/bin/env bash
# Smoke test for the observability pipeline: runs telemetry_export end to
# end, validates both the stdout report and the JSONL event trace as real
# JSON, replays the trace through trace_inspect, and boots the simserved
# telemetry daemon on an ephemeral port to exercise every HTTP/SSE endpoint
# live (healthz, metrics.json, at least two /events snapshots, graceful
# SIGTERM shutdown). Wired into ctest with label `obs`; run standalone as
#
#   scripts/smoke_telemetry.sh [BIN_DIR]
#
# where BIN_DIR is the CMake binary dir holding examples/ and tools/
# (default: build).
set -euo pipefail

bin_dir="${1:-build}"
telemetry="$bin_dir/examples/telemetry_export"
inspect="$bin_dir/examples/trace_inspect"
simserved="$bin_dir/tools/simserved/simserved"
for tool in "$telemetry" "$inspect"; do
  if [ ! -x "$tool" ]; then
    echo "smoke_telemetry: missing $tool (build with RFID_BUILD_EXAMPLES=ON)" >&2
    exit 1
  fi
done

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# 1. Full run: stdout report JSON + JSONL trace side channel.
"$telemetry" TPP 500 --trace-jsonl "$workdir/trace.jsonl" \
  > "$workdir/report.json"

# 2. Both outputs must be valid JSON (every JSONL line is one document).
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "$workdir/report.json" > /dev/null
  python3 - "$workdir/trace.jsonl" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    for lineno, line in enumerate(f, 1):
        try:
            json.loads(line)
        except json.JSONDecodeError as e:
            sys.exit(f"line {lineno}: {e}")
PY
else
  echo "smoke_telemetry: python3 not found, skipping JSON validation" >&2
fi

# 3. The trace must carry the schema header and per-event lines. grep -c
# exits nonzero on zero matches, which set -e would turn into a silent
# death; catch it so the count check below reports the failure loudly.
head -n 1 "$workdir/trace.jsonl" | grep -q '"schema":"rfid-trace"'
events=$(grep -c '"type":"event"' "$workdir/trace.jsonl" || true)
if [ "$events" -lt 500 ]; then
  echo "smoke_telemetry: expected >= 500 events, got $events" >&2
  exit 1
fi

# 4. trace_inspect must replay the trace and account for every phase.
"$inspect" "$workdir/trace.jsonl" > "$workdir/summary.txt"
for needle in reader_vector turnaround tag_reply "clock total"; do
  grep -q "$needle" "$workdir/summary.txt"
done

# 5. Strict argument parsing: a garbage population must be rejected.
if "$telemetry" TPP 12x > /dev/null 2>&1; then
  echo "smoke_telemetry: '12x' should have been rejected" >&2
  exit 1
fi
if "$telemetry" TPP 0 > /dev/null 2>&1; then
  echo "smoke_telemetry: population 0 should have been rejected" >&2
  exit 1
fi
if "$inspect" --poll-ms 0 "$workdir/trace.jsonl" > /dev/null 2>&1; then
  echo "smoke_telemetry: --poll-ms 0 should have been rejected" >&2
  exit 1
fi

# 6. The telemetry daemon, end to end over real HTTP. Skipped (not failed)
# when the daemon wasn't built or curl is unavailable, so the offline
# pipeline above still gates minimal builds.
if [ ! -x "$simserved" ]; then
  echo "smoke_telemetry: OK ($events events; simserved not built, daemon smoke skipped)"
  exit 0
fi
if ! command -v curl > /dev/null 2>&1; then
  echo "smoke_telemetry: OK ($events events; curl not found, daemon smoke skipped)"
  exit 0
fi

# Ephemeral port (--port 0): the daemon prints the bound port on stdout;
# poll for the announce line instead of racing the bind.
"$simserved" --port 0 --readers 2 --tags 64 --seed 7 --snapshot-ms 100 \
  --throttle-us 500 > "$workdir/simserved.log" 2>&1 &
daemon_pid=$!
trap 'kill "$daemon_pid" 2> /dev/null || true; rm -rf "$workdir"' EXIT

port=""
for _ in $(seq 1 100); do
  port=$(sed -n 's#.*listening on http://127\.0\.0\.1:\([0-9][0-9]*\).*#\1#p' \
    "$workdir/simserved.log")
  [ -n "$port" ] && break
  if ! kill -0 "$daemon_pid" 2> /dev/null; then
    echo "smoke_telemetry: simserved died before announcing its port" >&2
    cat "$workdir/simserved.log" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "smoke_telemetry: simserved never announced its port" >&2
  cat "$workdir/simserved.log" >&2
  exit 1
fi
base="http://127.0.0.1:$port"

# Liveness first, then a real snapshot (wait out the first publish), then
# the dashboard, then a live SSE read collecting at least two snapshots.
curl -fsS "$base/healthz" > "$workdir/healthz.json"
grep -q '"status":"ok"' "$workdir/healthz.json"
for _ in $(seq 1 50); do
  if curl -fsS "$base/metrics.json" > "$workdir/metrics.json" 2> /dev/null; then
    break
  fi
  sleep 0.1
done
grep -q '"type":"snapshot"' "$workdir/metrics.json"
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "$workdir/metrics.json" > /dev/null
fi
curl -fsS "$base/" > "$workdir/dashboard.html"
grep -qi '<!doctype html>' "$workdir/dashboard.html"

# /events streams until the client hangs up: cap with --max-time and treat
# curl's exit-28 timeout as the expected way out of an unbounded stream.
curl -sN --max-time 3 "$base/events" > "$workdir/events.txt" || true
sse_snapshots=$(grep -c '^event: snapshot$' "$workdir/events.txt" || true)
if [ "$sse_snapshots" -lt 2 ]; then
  echo "smoke_telemetry: expected >= 2 SSE snapshots, got $sse_snapshots" >&2
  cat "$workdir/events.txt" >&2
  exit 1
fi

# Graceful shutdown: SIGTERM must produce exit 0 and the stop banner.
kill -TERM "$daemon_pid"
daemon_status=0
wait "$daemon_pid" || daemon_status=$?
if [ "$daemon_status" -ne 0 ]; then
  echo "smoke_telemetry: simserved exited $daemon_status on SIGTERM" >&2
  cat "$workdir/simserved.log" >&2
  exit 1
fi
grep -q 'simserved: stopped (SIGTERM' "$workdir/simserved.log"

echo "smoke_telemetry: OK ($events events, $sse_snapshots SSE snapshots on port $port)"
