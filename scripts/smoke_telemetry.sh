#!/usr/bin/env bash
# Smoke test for the observability pipeline: runs telemetry_export end to
# end, validates both the stdout report and the JSONL event trace as real
# JSON, and replays the trace through trace_inspect. Wired into ctest with
# label `obs`; run standalone as
#
#   scripts/smoke_telemetry.sh [BIN_DIR]
#
# where BIN_DIR is the CMake binary dir holding examples/ (default: build).
set -euo pipefail

bin_dir="${1:-build}"
telemetry="$bin_dir/examples/telemetry_export"
inspect="$bin_dir/examples/trace_inspect"
for tool in "$telemetry" "$inspect"; do
  if [ ! -x "$tool" ]; then
    echo "smoke_telemetry: missing $tool (build with RFID_BUILD_EXAMPLES=ON)" >&2
    exit 1
  fi
done

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# 1. Full run: stdout report JSON + JSONL trace side channel.
"$telemetry" TPP 500 --trace-jsonl "$workdir/trace.jsonl" \
  > "$workdir/report.json"

# 2. Both outputs must be valid JSON (every JSONL line is one document).
if command -v python3 > /dev/null 2>&1; then
  python3 -m json.tool "$workdir/report.json" > /dev/null
  python3 - "$workdir/trace.jsonl" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    for lineno, line in enumerate(f, 1):
        try:
            json.loads(line)
        except json.JSONDecodeError as e:
            sys.exit(f"line {lineno}: {e}")
PY
else
  echo "smoke_telemetry: python3 not found, skipping JSON validation" >&2
fi

# 3. The trace must carry the schema header and per-event lines. grep -c
# exits nonzero on zero matches, which set -e would turn into a silent
# death; catch it so the count check below reports the failure loudly.
head -n 1 "$workdir/trace.jsonl" | grep -q '"schema":"rfid-trace"'
events=$(grep -c '"type":"event"' "$workdir/trace.jsonl" || true)
if [ "$events" -lt 500 ]; then
  echo "smoke_telemetry: expected >= 500 events, got $events" >&2
  exit 1
fi

# 4. trace_inspect must replay the trace and account for every phase.
"$inspect" "$workdir/trace.jsonl" > "$workdir/summary.txt"
for needle in reader_vector turnaround tag_reply "clock total"; do
  grep -q "$needle" "$workdir/summary.txt"
done

# 5. Strict argument parsing: a garbage population must be rejected.
if "$telemetry" TPP 12x > /dev/null 2>&1; then
  echo "smoke_telemetry: '12x' should have been rejected" >&2
  exit 1
fi
if "$telemetry" TPP 0 > /dev/null 2>&1; then
  echo "smoke_telemetry: population 0 should have been rejected" >&2
  exit 1
fi

echo "smoke_telemetry: OK ($events events)"
